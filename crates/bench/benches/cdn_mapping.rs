//! Benchmarks for the CDN substrate's hot path: authoritative answers
//! (the cost of every simulated probe) and the underlying RTT model.

use criterion::{criterion_group, criterion_main, Criterion};
use crp_cdn::{Cdn, DeploymentSpec, MappingConfig};
use crp_dns::{AuthoritativeServer, RecursiveResolver};
use crp_netsim::{NetworkBuilder, PopulationSpec, SimTime};
use std::hint::black_box;

fn fixture() -> (Cdn, crp_netsim::HostId, crp_dns::DomainName) {
    let mut net = NetworkBuilder::new(5).build();
    let client = net.add_population(&PopulationSpec::dns_servers(1))[0];
    let mut cdn = Cdn::deploy(
        net,
        &DeploymentSpec::akamai_like(1.0),
        MappingConfig::default(),
    );
    let name = cdn.add_customer("us.i1.yimg.com").expect("valid name");
    (cdn, client, name)
}

fn bench_authoritative_answer(c: &mut Criterion) {
    let (cdn, client, name) = fixture();
    // Warm the shortlist memo, then measure the steady-state cost.
    let _ = cdn.authoritative_answer(&name, client, SimTime::ZERO);
    let mut t = 0u64;
    c.bench_function("cdn_authoritative_answer_warm", |bench| {
        bench.iter(|| {
            t += 20_000;
            cdn.authoritative_answer(black_box(&name), client, SimTime::from_millis(t))
        });
    });
}

fn bench_resolver_roundtrip(c: &mut Criterion) {
    let (cdn, client, name) = fixture();
    let mut resolver = RecursiveResolver::new(client);
    let mut t = 0u64;
    c.bench_function("recursive_resolve_uncached", |bench| {
        bench.iter(|| {
            t += 20_000;
            resolver
                .resolve_uncached(black_box(&name), &cdn, SimTime::from_millis(t))
                .expect("cdn answers")
        });
    });
}

fn bench_rtt_model(c: &mut Criterion) {
    let mut net = NetworkBuilder::new(6).build();
    let hosts = net.add_population(&PopulationSpec::dns_servers(2));
    let mut t = 0u64;
    c.bench_function("network_rtt_query", |bench| {
        bench.iter(|| {
            t += 1_000;
            net.rtt(hosts[0], hosts[1], SimTime::from_millis(t))
        });
    });
}

criterion_group!(
    benches,
    bench_authoritative_answer,
    bench_resolver_roundtrip,
    bench_rtt_model
);
criterion_main!(benches);
