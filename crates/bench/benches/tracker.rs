//! Benchmarks for the redirection tracker: the per-probe bookkeeping a
//! deployed CRP client pays, and ratio-map derivation under each window
//! policy (Fig. 9's sweep, as a cost question).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crp_core::{CountingTracker, RedirectionTracker, WindowPolicy};
use crp_netsim::{SimDuration, SimTime};
use std::hint::black_box;

fn full_tracker(probes: usize) -> RedirectionTracker<u32> {
    let mut t = RedirectionTracker::new();
    for i in 0..probes {
        t.record(
            SimTime::from_mins(10 * i as u64),
            vec![(i % 7) as u32, ((i * 3) % 7) as u32],
        );
    }
    t
}

fn bench_record(c: &mut Criterion) {
    c.bench_function("tracker_record_bounded_1000", |bench| {
        bench.iter_batched(
            || RedirectionTracker::<u32>::with_capacity(30),
            |mut t| {
                for i in 0..1_000u64 {
                    t.record(SimTime::from_mins(i), vec![(i % 9) as u32]);
                }
                t
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_ratio_map_windows(c: &mut Criterion) {
    let tracker = full_tracker(720); // 5 days at 10-minute probes
    let now = SimTime::from_mins(7_200);
    let mut group = c.benchmark_group("ratio_map_window");
    for (label, window) in [
        ("all_720", WindowPolicy::All),
        ("last_30", WindowPolicy::LastProbes(30)),
        ("last_10", WindowPolicy::LastProbes(10)),
        (
            "max_age_6h",
            WindowPolicy::MaxAge(SimDuration::from_hours(6)),
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &window, |bench, w| {
            bench.iter(|| black_box(&tracker).ratio_map(*w, now).expect("non-empty"));
        });
    }
    group.finish();
}

fn bench_lifetime_map(c: &mut Criterion) {
    // Six months of 10-minute probes: the rescan cost the counting
    // tracker eliminates.
    let probes = 26_000usize;
    let mut rescan = RedirectionTracker::new();
    let mut counting = CountingTracker::new(30);
    for i in 0..probes {
        let servers = vec![(i % 9) as u32, ((i * 5) % 11) as u32];
        rescan.record(SimTime::from_mins(10 * i as u64), servers.clone());
        counting.record(SimTime::from_mins(10 * i as u64), servers);
    }
    let now = SimTime::from_mins(10 * probes as u64);
    let mut group = c.benchmark_group("lifetime_ratio_map_26k_probes");
    group.bench_function("rescan", |bench| {
        bench.iter(|| {
            black_box(&rescan)
                .ratio_map(WindowPolicy::All, now)
                .expect("non-empty")
        });
    });
    group.bench_function("counting", |bench| {
        bench.iter(|| {
            black_box(&counting)
                .lifetime_ratio_map()
                .expect("non-empty")
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_record,
    bench_ratio_map_windows,
    bench_lifetime_map
);
criterion_main!(benches);
