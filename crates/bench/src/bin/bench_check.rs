//! The perf-regression gate: diffs a fresh `bench_all` run against a
//! committed baseline snapshot.
//!
//! ```text
//! cargo run --release -p crp-bench --bin bench_check [-- \
//!     --baseline <file>] [--current <file>] [--tolerance <pct>[%]]
//! ```
//!
//! Defaults: `--current results/bench.json`, `--baseline` the
//! lexicographically last `BENCH_*.json` in the working directory (the
//! newest snapshot under the `BENCH_<label>` convention), tolerance 20%.
//!
//! Exit status: 0 when every baseline benchmark is present and within
//! tolerance, 1 on regression or missing benchmarks, 2 on usage or I/O
//! errors — mirroring `telemetry_check`. A per-benchmark p50 delta
//! table is printed either way, so a passing run still shows how close
//! each benchmark sits to the gate.

use crp_bench::harness::{compare, parse_tolerance, BenchReport};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    baseline: Option<PathBuf>,
    current: PathBuf,
    tolerance_pct: f64,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        baseline: None,
        current: PathBuf::from("results/bench.json"),
        tolerance_pct: 20.0,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?));
            }
            "--current" => {
                opts.current = PathBuf::from(it.next().ok_or("--current needs a value")?);
            }
            "--tolerance" => {
                opts.tolerance_pct =
                    parse_tolerance(it.next().ok_or("--tolerance needs a value")?)?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn usage() {
    eprintln!("usage: bench_check [--baseline <file>] [--current <file>] [--tolerance <pct>[%]]");
}

/// The newest committed snapshot: lexicographically last `BENCH_*.json`
/// in `dir` (labels sort by convention: `pr3` < `pr4` < ...).
fn default_baseline(dir: &Path) -> Option<PathBuf> {
    let mut snapshots: Vec<PathBuf> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|entry| entry.ok())
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    snapshots.sort();
    snapshots.pop()
}

fn load_report(path: &Path) -> Result<BenchReport, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
    serde_json::from_str(&raw).map_err(|err| format!("{}: malformed report: {err}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options(&args) {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("bench_check: {err}");
            usage();
            return ExitCode::from(2);
        }
    };
    let baseline_path = match opts.baseline.or_else(|| default_baseline(Path::new("."))) {
        Some(path) => path,
        None => {
            eprintln!("bench_check: no --baseline given and no BENCH_*.json snapshot found");
            return ExitCode::from(2);
        }
    };
    let (baseline, current) = match (load_report(&baseline_path), load_report(&opts.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(err), _) | (_, Err(err)) => {
            eprintln!("bench_check: {err}");
            return ExitCode::from(2);
        }
    };

    eprintln!(
        "bench_check: {} (label {:?}) vs {} (label {:?}), tolerance {}%",
        opts.current.display(),
        current.label,
        baseline_path.display(),
        baseline.label,
        opts.tolerance_pct
    );
    let outcome = compare(&baseline, &current, opts.tolerance_pct);

    // Per-benchmark delta table, printed on success too: a run that
    // passes the gate can still be drifting toward it, and the deltas
    // are what a baseline-refresh decision is made from.
    println!("bench_check: per-benchmark p50 deltas (current vs baseline):");
    println!(
        "  {:<40} {:>12} {:>12} {:>8}",
        "benchmark", "baseline", "current", "ratio"
    );
    for base in &baseline.results {
        let Some(cur) = current.result(&base.name) else {
            continue;
        };
        let ratio = if base.p50_ns == 0 {
            "n/a".to_owned()
        } else {
            format!("{:.2}x", cur.p50_ns as f64 / base.p50_ns as f64)
        };
        println!(
            "  {:<40} {:>10}ns {:>10}ns {:>8}",
            base.name, base.p50_ns, cur.p50_ns, ratio
        );
    }

    for name in &outcome.added {
        eprintln!("bench_check: note: new benchmark {name} (not in baseline)");
    }
    for name in &outcome.missing {
        eprintln!("bench_check: MISSING {name}: in baseline but not in current run");
    }
    for reg in &outcome.regressions {
        eprintln!(
            "bench_check: REGRESSION {}: p50 {}ns -> {}ns ({:.2}x)",
            reg.name, reg.baseline_p50_ns, reg.current_p50_ns, reg.ratio
        );
    }
    if outcome.passed() {
        println!(
            "bench_check: OK — {} benchmark(s) within {}% of baseline",
            outcome.checked, opts.tolerance_pct
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "bench_check: FAILED — {} regression(s), {} missing of {} checked",
            outcome.regressions.len(),
            outcome.missing.len(),
            outcome.checked
        );
        ExitCode::from(1)
    }
}
