//! Renders a `bench_all` memory report as a per-benchmark attribution
//! table: who allocated, how much, and what stayed unaccounted.
//!
//! ```text
//! cargo run --release -p crp-bench --bin mem_report [-- \
//!     --current <file>] [--top <n>]
//! ```
//!
//! Defaults: `--current results/mem.json`, top 10 domains per
//! benchmark (by allocations per iteration). The attributed fraction
//! on each benchmark line is the share of its allocations charged to
//! named domains — the number the tentpole acceptance gate (≥ 95% on
//! `macro/fig4_closest_smoke`) reads.
//!
//! Exit status: 0 on success, 2 on usage or I/O errors.

use crp_bench::harness::MemReport;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    current: PathBuf,
    top: usize,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        current: PathBuf::from("results/mem.json"),
        top: 10,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--current" => {
                opts.current = PathBuf::from(it.next().ok_or("--current needs a value")?);
            }
            "--top" => {
                opts.top = it
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|_| "--top needs a positive integer".to_owned())?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if opts.top == 0 {
        return Err("--top needs a positive integer".to_owned());
    }
    Ok(opts)
}

fn usage() {
    eprintln!("usage: mem_report [--current <file>] [--top <n>]");
}

fn format_bytes(bytes: i64) -> String {
    let magnitude = bytes.unsigned_abs();
    let sign = if bytes < 0 { "-" } else { "" };
    if magnitude >= 1 << 20 {
        format!("{sign}{:.1}MiB", magnitude as f64 / (1 << 20) as f64)
    } else if magnitude >= 1 << 10 {
        format!("{sign}{:.1}KiB", magnitude as f64 / (1 << 10) as f64)
    } else {
        format!("{sign}{magnitude}B")
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options(&args) {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("mem_report: {err}");
            usage();
            return ExitCode::from(2);
        }
    };
    let raw = match std::fs::read_to_string(&opts.current) {
        Ok(raw) => raw,
        Err(err) => {
            eprintln!("mem_report: cannot read {}: {err}", opts.current.display());
            return ExitCode::from(2);
        }
    };
    let report: MemReport = match serde_json::from_str(&raw) {
        Ok(report) => report,
        Err(err) => {
            eprintln!(
                "mem_report: {}: malformed report: {err}",
                opts.current.display()
            );
            return ExitCode::from(2);
        }
    };

    println!(
        "mem_report: label {:?}{}, {} benchmark(s)",
        report.label,
        if report.quick { " (quick plan)" } else { "" },
        report.results.len()
    );
    for result in &report.results {
        println!(
            "\n{} — {} iterations, {:.1}% of allocations attributed",
            result.name,
            result.iters,
            result.attributed_fraction * 100.0
        );
        println!(
            "  {:<24} {:>14} {:>14} {:>12}",
            "domain", "allocs/iter", "bytes/iter", "peak"
        );
        let mut rows: Vec<_> = result.domains.iter().collect();
        rows.sort_by(|a, b| {
            b.allocs_per_iter
                .cmp(&a.allocs_per_iter)
                .then_with(|| a.domain.cmp(&b.domain))
        });
        for row in rows.iter().take(opts.top) {
            println!(
                "  {:<24} {:>14} {:>14} {:>12}",
                row.domain,
                row.allocs_per_iter,
                row.bytes_per_iter,
                format_bytes(row.peak_bytes)
            );
        }
        if rows.len() > opts.top {
            println!("  ... {} more domain(s)", rows.len() - opts.top);
        }
    }
    ExitCode::SUCCESS
}
