//! Runs every named benchmark under a fixed plan and writes
//! machine-readable results:
//!
//! ```text
//! cargo run --release -p crp-bench --bin bench_all [-- --quick]
//!     [--label <name>] [--out <dir>] [--snapshot <file>]
//! ```
//!
//! Output goes to `<out>/bench.json` (default `results/bench.json`) and
//! a snapshot copy at `--snapshot` (default `BENCH_<label>.json` in the
//! working directory) — the start of the repo's perf trajectory.
//! `bench_check` diffs a later run against such a snapshot.
//!
//! The binary links the counting global allocator, so every result
//! also reports allocation pressure per iteration. After the timing
//! pass, a second **attribution pass** re-runs the tracked rows with
//! `crp_telemetry::mem` armed — armed attribution taxes every
//! allocation, so it must never overlap the timed iterations — and the
//! per-domain budgets land in `<out>/mem.json`, the input `mem_check`
//! gates against `MEM_BASELINE.json` and `mem_report` renders.

use crp_bench::harness::{self, MemReport, MemResult, Runner};
use crp_bench::{observed_scenario, synthetic_map, synthetic_maps};
use crp_core::{
    Clustering, Ranking, RatioMap, RedirectionTracker, SimilarityMetric, SmfConfig, WindowPolicy,
};
use crp_dns::{AuthoritativeServer, DomainName};
use crp_meridian::{FaultPlan, MeridianConfig, MeridianOverlay};
use crp_netsim::{HostId, NetworkBuilder, PopulationSpec, SimTime};
use std::path::PathBuf;
use std::process::ExitCode;

// The counting global allocator is installed crate-wide by `crp_eval`
// (a dependency), so this binary gets allocation counts without a
// second `#[global_allocator]` declaration.

struct Options {
    quick: bool,
    label: String,
    out_dir: PathBuf,
    snapshot: Option<PathBuf>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        quick: false,
        label: "baseline".to_owned(),
        out_dir: PathBuf::from("results"),
        snapshot: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--label" => {
                opts.label = it.next().ok_or("--label needs a value")?.clone();
            }
            "--out" => {
                opts.out_dir = PathBuf::from(it.next().ok_or("--out needs a value")?);
            }
            "--snapshot" => {
                opts.snapshot = Some(PathBuf::from(it.next().ok_or("--snapshot needs a value")?));
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if opts.label.is_empty() || opts.label.contains(['/', '\\']) {
        return Err(format!("invalid label {:?}", opts.label));
    }
    Ok(opts)
}

fn usage() {
    eprintln!("usage: bench_all [--quick] [--label <name>] [--out <dir>] [--snapshot <file>]");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options(&args) {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("bench_all: {err}");
            usage();
            return ExitCode::from(2);
        }
    };

    let mut runner = Runner::new(opts.quick);
    register_all(&mut runner);
    let report = runner.into_report(&opts.label);
    crp_telemetry::mem::start();
    let mut mem_results = Vec::new();
    mem_pass(&report, &mut mem_results);
    let _ = crp_telemetry::mem::finish();
    let mem_report = MemReport {
        label: report.label.clone(),
        quick: report.quick,
        results: mem_results,
    };

    println!(
        "{:<34} {:>12} {:>12} {:>14} {:>10} {:>8}",
        "benchmark", "p50", "p95", "throughput/s", "B/iter", "allocs"
    );
    for r in &report.results {
        println!(
            "{:<34} {:>12} {:>12} {:>14.1} {:>10} {:>8}",
            r.name,
            format_ns(r.p50_ns),
            format_ns(r.p95_ns),
            r.throughput_per_sec,
            r.alloc_bytes_per_iter,
            r.allocs_per_iter
        );
    }

    let json = match serde_json::to_string(&report) {
        Ok(json) => json + "\n",
        Err(err) => {
            eprintln!("bench_all: failed to serialize report: {err}");
            return ExitCode::from(1);
        }
    };
    let out_path = opts.out_dir.join("bench.json");
    let snapshot = opts
        .snapshot
        .unwrap_or_else(|| PathBuf::from(format!("BENCH_{}.json", opts.label)));
    if let Err(err) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("bench_all: cannot create {}: {err}", opts.out_dir.display());
        return ExitCode::from(1);
    }
    for path in [&out_path, &snapshot] {
        if let Err(err) = std::fs::write(path, &json) {
            eprintln!("bench_all: cannot write {}: {err}", path.display());
            return ExitCode::from(1);
        }
        eprintln!("bench_all: wrote {}", path.display());
    }
    let mem_json = match serde_json::to_string(&mem_report) {
        Ok(json) => json + "\n",
        Err(err) => {
            eprintln!("bench_all: failed to serialize mem report: {err}");
            return ExitCode::from(1);
        }
    };
    let mem_path = opts.out_dir.join("mem.json");
    if let Err(err) = std::fs::write(&mem_path, &mem_json) {
        eprintln!("bench_all: cannot write {}: {err}", mem_path.display());
        return ExitCode::from(1);
    }
    eprintln!("bench_all: wrote {}", mem_path.display());
    ExitCode::SUCCESS
}

/// The attribution pass: re-runs each tracked workload exactly as many
/// iterations as its timing row executed (warmup included), with fresh
/// counters per row, and appends the per-domain budgets to `mem`.
fn mem_pass(report: &crp_bench::harness::BenchReport, mem: &mut Vec<MemResult>) {
    run_mem_row(report, mem, "tracker/ingest_1000_bounded30", ingest_row);
    run_mem_row(report, mem, "macro/fig4_closest_smoke", fig4_row);
    run_mem_row(report, mem, "macro/fig6_clustering_smoke", fig6_row);
    run_mem_row(report, mem, "macro/observation_campaign_6h", campaign_row);
}

/// Replays one tracked workload under armed attribution, mirroring the
/// timing plan recorded in its [`BenchResult`].
fn run_mem_row<T, F>(
    report: &crp_bench::harness::BenchReport,
    mem: &mut Vec<MemResult>,
    name: &str,
    mut f: F,
) where
    F: FnMut() -> T,
{
    let Some(result) = report.result(name) else {
        return;
    };
    let iters = (result.samples + 1).max(1) * result.iters_per_sample.max(1);
    crp_telemetry::mem::reset();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let snap = crp_telemetry::mem::snapshot();
    mem.push(harness::mem_result_for(result, &snap));
}

/// The tracker-ingest workload: 1,000 probes into a 30-bounded window.
fn ingest_row() -> RedirectionTracker<u32> {
    let mut t = RedirectionTracker::<u32>::with_capacity(30);
    for i in 0..1_000u64 {
        t.record_slice(SimTime::from_mins(i), &[(i % 9) as u32]);
    }
    t
}

/// The Fig. 4 closest-node pipeline at smoke scale.
fn fig4_row() -> usize {
    crp_eval::run_closest(&crp_eval::ClosestConfig::smoke(11))
        .outcomes
        .len()
}

/// The Fig. 6 clustering pipeline at smoke scale.
fn fig6_row() -> usize {
    crp_eval::run_clustering(&crp_eval::ClusterExpConfig::smoke(12))
        .king_ms
        .len()
}

/// The 6-hour observation campaign at smoke scale.
fn campaign_row() -> usize {
    let (_scenario, service, _end) = observed_scenario(13, 8, 4);
    service.node_count()
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Registers every named benchmark. Names are stable identifiers — the
/// regression gate keys on them, so renames show up as missing/added.
fn register_all(runner: &mut Runner) {
    // --- similarity kernels (§III: the innermost loop of every query)
    let a16 = synthetic_map(1, 16, 1_000);
    let b16 = synthetic_map(2, 16, 1_000);
    runner.run("similarity/cosine_16", 30, 2_000, || {
        a16.cosine_similarity(&b16)
    });
    let a12 = synthetic_map(3, 12, 200);
    let b12 = synthetic_map(4, 12, 200);
    runner.run("similarity/all_metrics_12", 30, 500, || {
        let mut acc = 0.0f64;
        for metric in SimilarityMetric::ALL {
            acc += metric.compare(&a12, &b12);
        }
        acc
    });

    // --- ratio-map construction
    let weights: Vec<(u32, f64)> = (0..32u32).map(|i| (i, 1.0 + f64::from(i))).collect();
    runner.run("ratio_map/from_weights_32", 30, 1_000, || {
        RatioMap::from_weights(weights.clone())
    });
    let counts: Vec<(u32, u64)> = (0..30u32).map(|i| (i % 12, 1 + u64::from(i))).collect();
    runner.run("ratio_map/from_counts_30", 30, 1_000, || {
        RatioMap::from_counts(counts.clone())
    });

    // --- redirection tracker (per-probe bookkeeping + window derivation)
    runner.run("tracker/ingest_1000_bounded30", 20, 20, ingest_row);
    // The same ingest loop with the live-observability stack armed:
    // every probe mints a causal trace and feeds the time-series store,
    // so the delta against the row above is the per-probe cost of
    // running traced. (Collectors are torn down before the next row.)
    crp_telemetry::trace::start(crp_telemetry::trace::TraceConfig::default());
    crp_telemetry::timeseries::start(crp_telemetry::timeseries::TimeSeriesConfig::default());
    runner.run("tracker/ingest_1000_bounded30_traced", 20, 20, || {
        let mut t = RedirectionTracker::<u32>::with_capacity(30);
        for i in 0..1_000u64 {
            let id = crp_telemetry::trace::mint(&[7, i]);
            crp_telemetry::trace::begin(id, i * 60_000, "bench.ingest");
            t.record_slice(SimTime::from_mins(i), &[(i % 9) as u32]);
        }
        t
    });
    let _ = crp_telemetry::trace::finish();
    let _ = crp_telemetry::timeseries::finish();

    let mut full = RedirectionTracker::new();
    for i in 0..720usize {
        full.record(
            SimTime::from_mins(10 * i as u64),
            vec![(i % 7) as u32, ((i * 3) % 7) as u32],
        );
    }
    let now = SimTime::from_mins(7_200);
    runner.run("tracker/window_last30_of_720", 30, 500, || {
        full.ratio_map(WindowPolicy::LastProbes(30), now)
    });

    // --- clustering and ranking (§V)
    let nodes = synthetic_maps(177, 8, 500);
    runner.run("smf/cluster_177x8", 10, 2, || {
        Clustering::smf(&nodes, &SmfConfig::paper(0.1))
    });
    let client = synthetic_map(0xC11E47, 10, 1_000);
    let cands = synthetic_maps(240, 10, 1_000);
    runner.run("ranking/rank_240_candidates", 20, 50, || {
        Ranking::rank(
            &client,
            cands.iter().map(|(n, m)| (*n, m)),
            SimilarityMetric::Cosine,
        )
    });

    // --- CDN mapping hot path (the cost of every simulated probe)
    let (cdn, cdn_client, name) = cdn_fixture();
    let mut t_ms = 0u64;
    runner.run("cdn/authoritative_answer_warm", 20, 200, move || {
        t_ms += 20_000;
        cdn.authoritative_answer(&name, cdn_client, SimTime::from_millis(t_ms))
    });

    // --- scripted infrastructure events (change-detection pipeline)
    // Applying the standard event suite to a freshly deployed CDN: the
    // per-build cost every change-detection scenario pays. The network
    // is cloned from a prebuilt template so topology generation stays
    // outside the measured path (deploy + stage + apply remain inside).
    let event_net = NetworkBuilder::new(21)
        .tier1_count(4)
        .transit_per_region(2)
        .stubs_per_region(12)
        .build();
    let suite = crp_cdn::EventScript::standard_suite(SimTime::from_hours(24));
    runner.run("cdn/apply_event", 10, 1, || {
        let mut cdn = crp_cdn::Cdn::deploy(
            event_net.clone(),
            &crp_cdn::DeploymentSpec::akamai_like(0.25),
            crp_cdn::MappingConfig::default(),
        );
        suite.stage(&mut cdn);
        suite.apply(&mut cdn).len()
    });

    // The online detector's scan over a recorded 12-hour history with a
    // mid-run mass remap — the full snapshot/lag/group-stats pipeline.
    let detect_service = detect_fixture();
    let detect_hosts: Vec<(u32, String)> = (0..48u32)
        .map(|h| (h, format!("region-{}", h % 4)))
        .collect();
    let detect_cfg = crp_audit::detect::DetectConfig::new(
        SimTime::from_hours(1),
        SimTime::from_hours(12),
        crp_netsim::SimDuration::from_mins(30),
    );
    runner.run("audit/detect_scan", 10, 5, || {
        crp_audit::detect::scan(&detect_service, &detect_hosts, &detect_cfg)
            .windows
            .len()
    });

    // --- Meridian baseline query (the probing cost CRP avoids)
    let mut net = NetworkBuilder::new(8).build();
    let members = net.add_population(&PopulationSpec::planetlab(60));
    let clients = net.add_population(&PopulationSpec::dns_servers(8));
    let overlay =
        MeridianOverlay::build(&net, &members, MeridianConfig::default(), FaultPlan::none());
    let mut q = 0usize;
    runner.run("meridian/closest_query_60", 10, 20, move || {
        q += 1;
        overlay.closest_node_query(
            &net,
            members[q % members.len()],
            clients[q % clients.len()],
            SimTime::from_mins(q as u64),
        )
    });

    // --- macro kernels: the per-figure experiment pipelines at smoke scale
    runner.run("macro/fig4_closest_smoke", 5, 1, fig4_row);
    runner.run("macro/fig6_clustering_smoke", 5, 1, fig6_row);
    runner.run("macro/observation_campaign_6h", 5, 1, campaign_row);

    // --- workspace tooling: the lint pass (scope + call graph +
    //     reachability) runs on every push, so its speed is gated too.
    //     Reading the sources stays outside the timed closure.
    let ws_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("bench sits two levels below the workspace root")
        .to_path_buf();
    let sources = crp_xtask::read_workspace_sources(&ws_root).expect("workspace sources readable");
    runner.run("xtask/lint_workspace", 5, 1, || {
        crp_xtask::lint_files(&sources, &[]).diagnostics.len()
    });
}

/// A 12-hour observation history for the detector scan: 48 hosts in 4
/// scope groups probing every 10 minutes, with half of every group
/// decisively remapping at hour 6 — enough churn that the scan row
/// exercises the full detection path, not just the quiet one.
fn detect_fixture() -> crp_core::CrpService<u32, u32> {
    let mut svc = crp_core::CrpService::new(WindowPolicy::LastProbes(12), SimilarityMetric::Cosine);
    for host in 0..48u32 {
        for m in 0..72u64 {
            let t = SimTime::from_mins(m * 10);
            let flipped = host % 2 == 0 && t >= SimTime::from_hours(6);
            let replica = if flipped { 100 + host % 4 } else { host % 8 };
            svc.record(host, t, vec![replica, (host + 1) % 8]);
        }
    }
    svc
}

fn cdn_fixture() -> (crp_cdn::Cdn, HostId, DomainName) {
    let mut net = NetworkBuilder::new(5).build();
    let client = net.add_population(&PopulationSpec::dns_servers(1))[0];
    let mut cdn = crp_cdn::Cdn::deploy(
        net,
        &crp_cdn::DeploymentSpec::akamai_like(1.0),
        crp_cdn::MappingConfig::default(),
    );
    let name = cdn
        .add_customer("us.i1.yimg.com")
        .expect("valid customer name");
    let _ = cdn.authoritative_answer(&name, client, SimTime::ZERO); // warm the shortlist memo
    (cdn, client, name)
}
