//! The memory-budget gate: diffs a fresh `bench_all` memory report
//! against the committed `MEM_BASELINE.json`.
//!
//! ```text
//! cargo run --release -p crp-bench --bin mem_check [-- \
//!     --baseline <file>] [--current <file>] [--tolerance <pct>[%]]
//!     [--update-baseline]
//! ```
//!
//! Defaults: `--current results/mem.json`, `--baseline
//! MEM_BASELINE.json`, tolerance 20%. A domain budget regresses when
//! its per-iteration allocation count or raw peak bytes exceed the
//! baseline by more than the tolerance; a benchmark missing from the
//! current run fails too (a silent drop would disable its own gate).
//!
//! `--update-baseline` rewrites the baseline file from the current
//! report instead of gating — the refresh path, mirroring `bench_all
//! --snapshot` for timing baselines.
//!
//! Exit status: 0 on pass (or refresh), 1 on regression or missing
//! benchmarks, 2 on usage or I/O errors — mirroring `bench_check`.

use crp_bench::harness::{compare_mem, parse_tolerance, MemReport};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    baseline: PathBuf,
    current: PathBuf,
    tolerance_pct: f64,
    update_baseline: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        baseline: PathBuf::from("MEM_BASELINE.json"),
        current: PathBuf::from("results/mem.json"),
        tolerance_pct: 20.0,
        update_baseline: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => {
                opts.baseline = PathBuf::from(it.next().ok_or("--baseline needs a value")?);
            }
            "--current" => {
                opts.current = PathBuf::from(it.next().ok_or("--current needs a value")?);
            }
            "--tolerance" => {
                opts.tolerance_pct =
                    parse_tolerance(it.next().ok_or("--tolerance needs a value")?)?;
            }
            "--update-baseline" => opts.update_baseline = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: mem_check [--baseline <file>] [--current <file>] [--tolerance <pct>[%]] \
         [--update-baseline]"
    );
}

fn load_report(path: &Path) -> Result<MemReport, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
    serde_json::from_str(&raw).map_err(|err| format!("{}: malformed report: {err}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_options(&args) {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("mem_check: {err}");
            usage();
            return ExitCode::from(2);
        }
    };
    let current = match load_report(&opts.current) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("mem_check: {err}");
            return ExitCode::from(2);
        }
    };

    if opts.update_baseline {
        let json = match serde_json::to_string(&current) {
            Ok(json) => json + "\n",
            Err(err) => {
                eprintln!("mem_check: failed to serialize baseline: {err}");
                return ExitCode::from(2);
            }
        };
        if let Err(err) = std::fs::write(&opts.baseline, &json) {
            eprintln!("mem_check: cannot write {}: {err}", opts.baseline.display());
            return ExitCode::from(2);
        }
        println!(
            "mem_check: baseline {} refreshed from {}",
            opts.baseline.display(),
            opts.current.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match load_report(&opts.baseline) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("mem_check: {err}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "mem_check: {} (label {:?}) vs {} (label {:?}), tolerance {}%",
        opts.current.display(),
        current.label,
        opts.baseline.display(),
        baseline.label,
        opts.tolerance_pct
    );
    let outcome = compare_mem(&baseline, &current, opts.tolerance_pct);

    // Per-budget delta table, printed on success too — the refresh
    // decision is made from how close each budget sits to its gate.
    println!("mem_check: per-domain budget deltas (current vs baseline):");
    println!(
        "  {:<34} {:<22} {:>14} {:>14} {:>12} {:>12}",
        "benchmark", "domain", "base allocs", "cur allocs", "base peak", "cur peak"
    );
    for base in &baseline.results {
        let Some(cur) = current.result(&base.name) else {
            continue;
        };
        for row in &base.domains {
            let (cur_allocs, cur_peak) = cur
                .domain(&row.domain)
                .map_or((0, 0), |d| (d.allocs_per_iter as i64, d.peak_bytes));
            println!(
                "  {:<34} {:<22} {:>14} {:>14} {:>12} {:>12}",
                base.name, row.domain, row.allocs_per_iter, cur_allocs, row.peak_bytes, cur_peak
            );
        }
    }

    for name in &outcome.added {
        eprintln!("mem_check: note: new domain budget {name} (not in baseline)");
    }
    for name in &outcome.missing {
        eprintln!("mem_check: MISSING {name}: in baseline but not in current run");
    }
    for reg in &outcome.regressions {
        eprintln!(
            "mem_check: REGRESSION {}/{}: {} {} -> {} ({:.2}x)",
            reg.name, reg.domain, reg.metric, reg.baseline, reg.current, reg.ratio
        );
    }
    if outcome.passed() {
        println!(
            "mem_check: OK — {} domain budget(s) within {}% of baseline",
            outcome.checked, opts.tolerance_pct
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "mem_check: FAILED — {} regression(s), {} missing of {} checked",
            outcome.regressions.len(),
            outcome.missing.len(),
            outcome.checked
        );
        ExitCode::from(1)
    }
}
