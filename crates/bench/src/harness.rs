//! The measurement engine behind `bench_all` and the comparison logic
//! behind `bench_check`.
//!
//! Design goals, in order: **reproducible shape** (fixed warmup and
//! iteration counts, no adaptive calibration, so two runs of the same
//! binary execute the same work), **machine-readable output** (a
//! [`BenchReport`] serialized to `results/bench.json` and snapshotted to
//! `BENCH_<label>.json`), and **diffability** ([`compare`] turns two
//! reports into a pass/fail regression verdict for CI).
//!
//! Timing works sample-wise: each sample times `iters_per_sample`
//! back-to-back iterations and records the mean nanoseconds per
//! iteration; p50/p95 are nearest-rank percentiles over the samples.
//! When the running binary installs
//! [`crp_telemetry::profile::CountingAllocator`] as its global
//! allocator, per-iteration allocation pressure is reported as well.
//!
//! This module deliberately does **no file I/O** (lint rule CRP006):
//! the binaries own reading and writing; the harness owns measuring and
//! comparing, so every decision procedure here is unit-testable.

use crp_telemetry::profile;
use crp_telemetry::MemSnapshot;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Statistics for one named benchmark.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchResult {
    /// Stable benchmark name, slash-namespaced (`smf/cluster_177x8`).
    pub name: String,
    /// Samples actually measured.
    pub samples: u64,
    /// Iterations timed per sample.
    pub iters_per_sample: u64,
    /// Median nanoseconds per iteration (the headline number).
    pub p50_ns: u64,
    /// 95th-percentile nanoseconds per iteration.
    pub p95_ns: u64,
    /// Mean nanoseconds per iteration across samples.
    pub mean_ns: u64,
    /// Fastest sample, ns per iteration.
    pub min_ns: u64,
    /// Slowest sample, ns per iteration.
    pub max_ns: u64,
    /// Iterations per second implied by the median (`1e9 / p50_ns`).
    pub throughput_per_sec: f64,
    /// Mean heap bytes allocated per iteration (0 without the counting
    /// allocator installed).
    pub alloc_bytes_per_iter: u64,
    /// Mean heap allocations per iteration (same caveat).
    pub allocs_per_iter: u64,
}

/// A full benchmark run: the `bench.json` / `BENCH_<label>.json` schema.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Snapshot label (`pr3`, `ci`, ...).
    pub label: String,
    /// Whether the reduced `--quick` plan produced these numbers.
    pub quick: bool,
    /// Results in execution order.
    pub results: Vec<BenchResult>,
}

impl BenchReport {
    /// Looks up a result by benchmark name.
    pub fn result(&self, name: &str) -> Option<&BenchResult> {
        self.results.iter().find(|r| r.name == name)
    }
}

/// Runs registered benchmarks under a fixed, deterministic plan.
pub struct Runner {
    quick: bool,
    results: Vec<BenchResult>,
}

impl Runner {
    /// Creates a runner; `quick` shrinks every plan (fewer samples and
    /// iterations) for smoke runs where latency matters more than
    /// precision.
    pub fn new(quick: bool) -> Runner {
        Runner {
            quick,
            results: Vec::new(),
        }
    }

    /// Whether this runner is on the reduced plan.
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// Measures `f` as benchmark `name`: one warmup sample, then
    /// `samples` timed samples of `iters_per_sample` iterations each.
    /// In quick mode samples are capped at 5 and iterations divided by
    /// 4 (floor 1).
    pub fn run<T, F>(&mut self, name: &str, samples: usize, iters_per_sample: u64, mut f: F)
    where
        F: FnMut() -> T,
    {
        let (samples, iters) = if self.quick {
            (samples.min(5), (iters_per_sample / 4).max(1))
        } else {
            (samples.max(1), iters_per_sample.max(1))
        };

        // Warmup: one untimed sample to populate caches and lazy state.
        for _ in 0..iters {
            std::hint::black_box(f());
        }

        let mut per_iter_ns: Vec<u64> = Vec::with_capacity(samples);
        let bytes_before = profile::allocated_bytes();
        let allocs_before = profile::allocation_count();
        for _ in 0..samples {
            let started = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let total = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            per_iter_ns.push(total / iters);
        }
        let total_iters = samples as u64 * iters;
        let bytes = profile::allocated_bytes().saturating_sub(bytes_before);
        let allocs = profile::allocation_count().saturating_sub(allocs_before);

        self.results.push(summarize(
            name,
            &per_iter_ns,
            iters,
            bytes / total_iters,
            allocs / total_iters,
        ));
    }

    /// The most recently recorded result (the row a mem snapshot taken
    /// right after [`run`](Runner::run) belongs to).
    pub fn last(&self) -> Option<&BenchResult> {
        self.results.last()
    }

    /// Finishes the run and labels the report.
    pub fn into_report(self, label: &str) -> BenchReport {
        BenchReport {
            label: label.to_owned(),
            quick: self.quick,
            results: self.results,
        }
    }
}

/// Condenses per-iteration sample times into a [`BenchResult`].
fn summarize(
    name: &str,
    per_iter_ns: &[u64],
    iters_per_sample: u64,
    alloc_bytes_per_iter: u64,
    allocs_per_iter: u64,
) -> BenchResult {
    let mut sorted = per_iter_ns.to_vec();
    sorted.sort_unstable();
    let p50 = percentile(&sorted, 50);
    let sum: u64 = sorted.iter().fold(0u64, |acc, &v| acc.saturating_add(v));
    BenchResult {
        name: name.to_owned(),
        samples: sorted.len() as u64,
        iters_per_sample,
        p50_ns: p50,
        p95_ns: percentile(&sorted, 95),
        mean_ns: if sorted.is_empty() {
            0
        } else {
            sum / sorted.len() as u64
        },
        min_ns: sorted.first().copied().unwrap_or(0),
        max_ns: sorted.last().copied().unwrap_or(0),
        throughput_per_sec: if p50 == 0 { 0.0 } else { 1e9 / p50 as f64 },
        alloc_bytes_per_iter,
        allocs_per_iter,
    }
}

/// Nearest-rank percentile over an ascending slice (`pct` in 0..=100):
/// the value at rank `ceil(len * pct / 100)`. Returns 0 for an empty
/// slice.
pub fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * pct).div_ceil(100);
    sorted[rank.saturating_sub(1)]
}

/// One benchmark whose median got slower than the gate allows.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// Benchmark name.
    pub name: String,
    /// Baseline median, ns per iteration.
    pub baseline_p50_ns: u64,
    /// Current median, ns per iteration.
    pub current_p50_ns: u64,
    /// `current / baseline` slowdown factor.
    pub ratio: f64,
}

/// Outcome of diffing a current run against a baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct Comparison {
    /// Benchmarks present in both reports.
    pub checked: usize,
    /// Benchmarks beyond tolerance, worst first.
    pub regressions: Vec<Regression>,
    /// Baseline benchmarks missing from the current run (a silent drop
    /// would otherwise disable its own gate).
    pub missing: Vec<String>,
    /// Current benchmarks absent from the baseline (informational).
    pub added: Vec<String>,
}

impl Comparison {
    /// Whether the gate passes: nothing regressed, nothing missing.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Diffs `current` against `baseline`: a benchmark regresses when its
/// median exceeds the baseline median by more than `tolerance_pct`
/// percent. Zero-valued baselines (sub-resolution medians) are skipped
/// rather than divided by.
pub fn compare(baseline: &BenchReport, current: &BenchReport, tolerance_pct: f64) -> Comparison {
    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    let mut checked = 0usize;
    for base in &baseline.results {
        let Some(cur) = current.result(&base.name) else {
            missing.push(base.name.clone());
            continue;
        };
        checked += 1;
        if base.p50_ns == 0 {
            continue;
        }
        let limit = base.p50_ns as f64 * (1.0 + tolerance_pct / 100.0);
        if (cur.p50_ns as f64) > limit {
            regressions.push(Regression {
                name: base.name.clone(),
                baseline_p50_ns: base.p50_ns,
                current_p50_ns: cur.p50_ns,
                ratio: cur.p50_ns as f64 / base.p50_ns as f64,
            });
        }
    }
    regressions.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
    let added = current
        .results
        .iter()
        .filter(|r| baseline.result(&r.name).is_none())
        .map(|r| r.name.clone())
        .collect();
    Comparison {
        checked,
        regressions,
        missing,
        added,
    }
}

/// Parses a tolerance argument: `"50"`, `"50%"`, `"12.5%"` → percent.
///
/// # Errors
///
/// Returns a message when the value is not a finite non-negative number.
pub fn parse_tolerance(raw: &str) -> Result<f64, String> {
    let trimmed = raw.trim().trim_end_matches('%').trim();
    let value: f64 = trimmed
        .parse()
        .map_err(|_| format!("invalid tolerance {raw:?}: expected a percentage like 20%"))?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("invalid tolerance {raw:?}: must be >= 0"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------
// Memory attribution: the `mem.json` / `MEM_BASELINE.json` schema and
// the `mem_check` comparison logic
// ---------------------------------------------------------------------

/// One domain's allocation budget for one benchmark row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemDomainRow {
    /// Attribution domain name (`core.tracker`, `(unattributed)`, ...).
    pub domain: String,
    /// Peak live bytes over the whole row (raw, not per-iteration — a
    /// high-water mark does not scale with the plan).
    pub peak_bytes: i64,
    /// Mean heap allocations per iteration charged to this domain.
    pub allocs_per_iter: u64,
    /// Mean bytes allocated per iteration charged to this domain.
    pub bytes_per_iter: u64,
}

/// Per-domain allocation statistics for one benchmark row.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemResult {
    /// Benchmark name, matching the [`BenchResult`] it annotates.
    pub name: String,
    /// Iterations the counters cover (warmup included — attribution
    /// sees every iteration the row ran).
    pub iters: u64,
    /// Fraction of the row's allocations charged to named domains.
    pub attributed_fraction: f64,
    /// Active domains, name-sorted; zero-activity domains are dropped.
    pub domains: Vec<MemDomainRow>,
}

impl MemResult {
    /// Looks up a domain row by name.
    pub fn domain(&self, name: &str) -> Option<&MemDomainRow> {
        self.domains.iter().find(|d| d.domain == name)
    }
}

/// A full memory-attribution run: the `mem.json` / `MEM_BASELINE.json`
/// schema.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemReport {
    /// Snapshot label, matching the bench report of the same run.
    pub label: String,
    /// Whether the reduced `--quick` plan produced these numbers.
    pub quick: bool,
    /// Results in execution order.
    pub results: Vec<MemResult>,
}

impl MemReport {
    /// Looks up a result by benchmark name.
    pub fn result(&self, name: &str) -> Option<&MemResult> {
        self.results.iter().find(|r| r.name == name)
    }
}

/// Condenses an armed attribution snapshot into the [`MemResult`] for
/// the benchmark row just measured. `result` supplies the plan shape:
/// counters are normalized over every iteration the row executed —
/// `(samples + 1) * iters_per_sample`, warmup included, because the
/// attribution counters saw the warmup too.
pub fn mem_result_for(result: &BenchResult, snap: &MemSnapshot) -> MemResult {
    let iters = (result.samples + 1).max(1) * result.iters_per_sample.max(1);
    let domains = snap
        .domains
        .iter()
        .filter(|d| d.allocs > 0 || d.reallocs > 0 || d.peak_bytes > 0)
        .map(|d| MemDomainRow {
            domain: d.name.clone(),
            peak_bytes: d.peak_bytes,
            allocs_per_iter: d.allocs / iters,
            bytes_per_iter: d.total_bytes / iters,
        })
        .collect();
    MemResult {
        name: result.name.clone(),
        iters,
        attributed_fraction: snap.attributed_fraction(),
        domains,
    }
}

/// One domain budget that grew beyond the gate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemRegression {
    /// Benchmark name.
    pub name: String,
    /// Attribution domain within the benchmark.
    pub domain: String,
    /// Which budget regressed: `allocs_per_iter` or `peak_bytes`.
    pub metric: String,
    /// Baseline value.
    pub baseline: i64,
    /// Current value.
    pub current: i64,
    /// `current / baseline` growth factor.
    pub ratio: f64,
}

/// Outcome of diffing a current memory report against a baseline.
#[derive(Clone, Debug, PartialEq)]
pub struct MemComparison {
    /// Domain budgets present in both reports.
    pub checked: usize,
    /// Budgets beyond tolerance, worst first.
    pub regressions: Vec<MemRegression>,
    /// Baseline benchmarks missing from the current run.
    pub missing: Vec<String>,
    /// `benchmark/domain` pairs new in the current run (informational —
    /// a new domain moves allocations, it does not create them).
    pub added: Vec<String>,
}

impl MemComparison {
    /// Whether the gate passes: nothing regressed, nothing missing.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

/// Diffs `current` against `baseline`: a domain budget regresses when
/// its per-iteration allocation count or raw peak bytes exceed the
/// baseline by more than `tolerance_pct` percent. Zero-valued baseline
/// budgets are skipped rather than divided by; domains absent from the
/// current run count as zero (shrinking is always in-budget).
pub fn compare_mem(baseline: &MemReport, current: &MemReport, tolerance_pct: f64) -> MemComparison {
    let limit = 1.0 + tolerance_pct / 100.0;
    let mut regressions = Vec::new();
    let mut missing = Vec::new();
    let mut checked = 0usize;
    for base in &baseline.results {
        let Some(cur) = current.result(&base.name) else {
            missing.push(base.name.clone());
            continue;
        };
        for row in &base.domains {
            checked += 1;
            let (cur_allocs, cur_peak) = cur
                .domain(&row.domain)
                .map_or((0, 0), |d| (d.allocs_per_iter as i64, d.peak_bytes));
            for (metric, base_val, cur_val) in [
                ("allocs_per_iter", row.allocs_per_iter as i64, cur_allocs),
                ("peak_bytes", row.peak_bytes, cur_peak),
            ] {
                if base_val <= 0 {
                    continue;
                }
                if cur_val as f64 > base_val as f64 * limit {
                    regressions.push(MemRegression {
                        name: base.name.clone(),
                        domain: row.domain.clone(),
                        metric: metric.to_owned(),
                        baseline: base_val,
                        current: cur_val,
                        ratio: cur_val as f64 / base_val as f64,
                    });
                }
            }
        }
    }
    regressions.sort_by(|a, b| b.ratio.total_cmp(&a.ratio));
    let mut added = Vec::new();
    for cur in &current.results {
        let base = baseline.result(&cur.name);
        for row in &cur.domains {
            if base.is_none_or(|b| b.domain(&row.domain).is_none()) {
                added.push(format!("{}/{}", cur.name, row.domain));
            }
        }
    }
    MemComparison {
        checked,
        regressions,
        missing,
        added,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(label: &str, entries: &[(&str, u64)]) -> BenchReport {
        BenchReport {
            label: label.to_owned(),
            quick: false,
            results: entries
                .iter()
                .map(|&(name, p50)| BenchResult {
                    name: name.to_owned(),
                    samples: 10,
                    iters_per_sample: 1,
                    p50_ns: p50,
                    p95_ns: p50 * 2,
                    mean_ns: p50,
                    min_ns: p50 / 2,
                    max_ns: p50 * 3,
                    throughput_per_sec: if p50 == 0 { 0.0 } else { 1e9 / p50 as f64 },
                    alloc_bytes_per_iter: 0,
                    allocs_per_iter: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 95), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0), 1);
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 100), 100);
    }

    #[test]
    fn summarize_orders_and_averages() {
        let r = summarize("x", &[30, 10, 20], 4, 128, 2);
        assert_eq!(r.samples, 3);
        assert_eq!(r.iters_per_sample, 4);
        assert_eq!(r.p50_ns, 20);
        assert_eq!(r.p95_ns, 30);
        assert_eq!(r.mean_ns, 20);
        assert_eq!(r.min_ns, 10);
        assert_eq!(r.max_ns, 30);
        assert!((r.throughput_per_sec - 5e7).abs() < 1e-6);
        assert_eq!(r.alloc_bytes_per_iter, 128);
    }

    #[test]
    fn runner_executes_fixed_plans() {
        let mut counted = 0u64;
        let mut runner = Runner::new(false);
        runner.run("count", 3, 5, || counted += 1);
        // 1 warmup sample + 3 timed samples, 5 iterations each.
        assert_eq!(counted, 20);
        let report = runner.into_report("test");
        assert_eq!(report.label, "test");
        assert!(!report.quick);
        let r = report.result("count").expect("result recorded");
        assert_eq!(r.samples, 3);
        assert_eq!(r.iters_per_sample, 5);
        assert!(r.max_ns >= r.p95_ns && r.p95_ns >= r.p50_ns && r.p50_ns >= r.min_ns);
    }

    #[test]
    fn quick_mode_shrinks_the_plan() {
        let mut counted = 0u64;
        let mut runner = Runner::new(true);
        runner.run("count", 30, 8, || counted += 1);
        // samples capped at 5, iters 8/4 = 2; plus one warmup sample.
        assert_eq!(counted, (5 + 1) * 2);
        let report = runner.into_report("q");
        assert!(report.quick);
        assert_eq!(report.result("count").map(|r| r.samples), Some(5));
        assert_eq!(report.result("count").map(|r| r.iters_per_sample), Some(2));
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut runner = Runner::new(true);
        runner.run("a/one", 2, 1, || 1 + 1);
        runner.run("b/two", 2, 1, || vec![0u8; 32].len());
        let report = runner.into_report("rt");
        let text = serde_json::to_string(&report).expect("serialize");
        let back: BenchReport = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, report);
    }

    #[test]
    fn compare_flags_regressions_beyond_tolerance() {
        let base = report("base", &[("a", 100), ("b", 100), ("c", 100)]);
        let cur = report("cur", &[("a", 119), ("b", 121), ("c", 300)]);
        let cmp = compare(&base, &cur, 20.0);
        assert_eq!(cmp.checked, 3);
        assert!(!cmp.passed());
        let names: Vec<&str> = cmp.regressions.iter().map(|r| r.name.as_str()).collect();
        // Worst first; `a` is within the 20% gate.
        assert_eq!(names, ["c", "b"]);
        assert!((cmp.regressions[0].ratio - 3.0).abs() < 1e-9);
    }

    #[test]
    fn compare_fails_on_missing_and_reports_added() {
        let base = report("base", &[("a", 100), ("gone", 50)]);
        let cur = report("cur", &[("a", 100), ("new", 10)]);
        let cmp = compare(&base, &cur, 20.0);
        assert_eq!(cmp.missing, ["gone"]);
        assert_eq!(cmp.added, ["new"]);
        assert!(!cmp.passed(), "a missing benchmark must fail the gate");
    }

    #[test]
    fn compare_skips_zero_baselines_and_passes_when_clean() {
        let base = report("base", &[("zero", 0), ("a", 100)]);
        let cur = report("cur", &[("zero", 999), ("a", 90)]);
        let cmp = compare(&base, &cur, 10.0);
        assert!(cmp.passed(), "{cmp:?}");
        assert_eq!(cmp.checked, 2);
    }

    fn mem_report(label: &str, rows: &[(&str, &[(&str, i64, u64)])]) -> MemReport {
        MemReport {
            label: label.to_owned(),
            quick: false,
            results: rows
                .iter()
                .map(|&(name, domains)| MemResult {
                    name: name.to_owned(),
                    iters: 100,
                    attributed_fraction: 0.97,
                    domains: domains
                        .iter()
                        .map(|&(domain, peak, allocs)| MemDomainRow {
                            domain: domain.to_owned(),
                            peak_bytes: peak,
                            allocs_per_iter: allocs,
                            bytes_per_iter: allocs * 32,
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    #[test]
    fn mem_result_normalizes_over_warmup_inclusive_iters() {
        let bench = summarize("row", &[10, 10, 10], 5, 0, 0);
        let snap = crp_telemetry::MemSnapshot {
            domains: vec![
                crp_telemetry::DomainMem {
                    name: "core.tracker".to_owned(),
                    live_bytes: 0,
                    peak_bytes: 4096,
                    total_bytes: 40_000,
                    allocs: 400,
                    deallocs: 400,
                    reallocs: 0,
                    size_classes: vec![0; 16],
                },
                crp_telemetry::DomainMem {
                    name: "idle.domain".to_owned(),
                    live_bytes: 0,
                    peak_bytes: 0,
                    total_bytes: 0,
                    allocs: 0,
                    deallocs: 0,
                    reallocs: 0,
                    size_classes: vec![0; 16],
                },
            ],
        };
        let r = mem_result_for(&bench, &snap);
        // 3 samples + 1 warmup, 5 iters each = 20 iterations.
        assert_eq!(r.iters, 20);
        let row = r.domain("core.tracker").expect("active domain kept");
        assert_eq!(row.allocs_per_iter, 20);
        assert_eq!(row.bytes_per_iter, 2_000);
        assert_eq!(row.peak_bytes, 4096, "peak stays raw");
        assert!(r.domain("idle.domain").is_none(), "idle domains dropped");
    }

    #[test]
    fn compare_mem_flags_both_budgets_and_skips_zero_baselines() {
        let base = mem_report(
            "base",
            &[("bm", &[("a", 1000, 100), ("b", 0, 50), ("zero", 0, 0)])],
        );
        let cur = mem_report(
            "cur",
            &[(
                "bm",
                &[
                    ("a", 1300, 100),
                    ("b", 512, 80),
                    ("fresh", 9, 9),
                    ("zero", 9, 9),
                ],
            )],
        );
        let cmp = compare_mem(&base, &cur, 20.0);
        assert!(!cmp.passed());
        let keys: Vec<(&str, &str)> = cmp
            .regressions
            .iter()
            .map(|r| (r.domain.as_str(), r.metric.as_str()))
            .collect();
        // `a` peak grew 30% (> 20%), `b` allocs grew 60%; `b` peak and
        // `zero` have no baseline to gate against.
        assert!(keys.contains(&("a", "peak_bytes")), "{keys:?}");
        assert!(keys.contains(&("b", "allocs_per_iter")), "{keys:?}");
        assert_eq!(keys.len(), 2, "{keys:?}");
        assert_eq!(cmp.regressions[0].ratio, 1.6, "worst first");
        assert_eq!(cmp.added, ["bm/fresh"], "new domains are informational");
    }

    #[test]
    fn compare_mem_treats_vanished_domains_as_zero_and_missing_benchmarks_as_failures() {
        let base = mem_report("base", &[("bm", &[("a", 1000, 100)]), ("gone", &[])]);
        let cur = mem_report("cur", &[("bm", &[])]);
        let cmp = compare_mem(&base, &cur, 10.0);
        assert!(cmp.regressions.is_empty(), "shrinking to zero is in-budget");
        assert_eq!(cmp.missing, ["gone"]);
        assert!(!cmp.passed());
    }

    #[test]
    fn mem_report_round_trips_through_json() {
        let report = mem_report("rt", &[("bm", &[("a", 42, 7)])]);
        let text = serde_json::to_string(&report).expect("serialize");
        let back: MemReport = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, report);
    }

    #[test]
    fn tolerance_parsing() {
        assert_eq!(parse_tolerance("50"), Ok(50.0));
        assert_eq!(parse_tolerance("50%"), Ok(50.0));
        assert_eq!(parse_tolerance(" 12.5% "), Ok(12.5));
        assert_eq!(parse_tolerance("0"), Ok(0.0));
        assert!(parse_tolerance("abc").is_err());
        assert!(parse_tolerance("-5").is_err());
        assert!(parse_tolerance("NaN").is_err());
    }
}
