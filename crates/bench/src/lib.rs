//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches measure the cost of every moving part of the
//! reproduction: similarity math, tracker updates, SMF clustering, the
//! CDN mapping hot path, Meridian queries, and the per-figure experiment
//! kernels at reduced scale.

use crp::{Scenario, ScenarioConfig};
use crp_cdn::ReplicaId;
use crp_core::{CrpService, RatioMap, SimilarityMetric, WindowPolicy};
use crp_netsim::{noise, HostId, SimDuration, SimTime};

/// A deterministic ratio map with `entries` replicas drawn from a key
/// space of `universe`, seeded by `seed`.
pub fn synthetic_map(seed: u64, entries: usize, universe: u64) -> RatioMap<u32> {
    let weights = (0..entries).map(|i| {
        let key = (noise::mix(&[seed, i as u64]) % universe) as u32;
        let w = 1.0 + noise::uniform(&[seed, 0xF00D, i as u64]) * 9.0;
        (key, w)
    });
    RatioMap::from_weights(weights).expect("positive weights") // crp-lint: allow(CRP001) — weights are drawn from [1, 10], always positive
}

/// A batch of synthetic ratio maps for clustering/selection benches.
pub fn synthetic_maps(count: usize, entries: usize, universe: u64) -> Vec<(usize, RatioMap<u32>)> {
    (0..count)
        .map(|i| (i, synthetic_map(i as u64, entries, universe)))
        .collect()
}

/// A small but fully real world: scenario + 6 hours of observations.
pub fn observed_scenario(
    seed: u64,
    candidates: usize,
    clients: usize,
) -> (Scenario, CrpService<HostId, ReplicaId>, SimTime) {
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        candidate_servers: candidates,
        clients,
        cdn_scale: 0.4,
        ..ScenarioConfig::default()
    });
    let end = SimTime::from_hours(6);
    let service = scenario.observe_all(
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );
    (scenario, service, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_maps_are_valid_and_deterministic() {
        let a = synthetic_map(5, 8, 100);
        let b = synthetic_map(5, 8, 100);
        assert_eq!(a, b);
        assert!(a.len() <= 8);
    }

    #[test]
    fn observed_scenario_is_usable() {
        let (scenario, service, _end) = observed_scenario(1, 4, 2);
        assert_eq!(scenario.candidates().len(), 4);
        assert!(service.node_count() > 0);
    }
}
