//! Fixtures and the measurement harness for the CRP benchmarks.
//!
//! The benches measure the cost of every moving part of the
//! reproduction: similarity math, tracker updates, SMF clustering, the
//! CDN mapping hot path, Meridian queries, and the per-figure experiment
//! kernels at reduced scale. The Criterion benches under `benches/`
//! consume the fixtures here; the `bench_all`/`bench_check` binaries
//! additionally use [`harness`] for fixed-plan runs with machine-readable
//! reports and regression gating.

pub mod harness;

use crp::{Scenario, ScenarioConfig};
use crp_cdn::ReplicaId;
use crp_core::{CrpService, RatioMap, SimilarityMetric, WindowPolicy};
use crp_netsim::{noise, HostId, SimDuration, SimTime};
use std::collections::HashSet;

/// A deterministic ratio map with exactly `entries` distinct replicas
/// drawn from a key space of `universe`, seeded by `seed`.
///
/// Keys are hashed into the universe and deduplicated by deterministic
/// linear probing (the next free key, wrapping), so the map's
/// cardinality is always `entries` — hash collisions must not silently
/// shrink benchmark inputs.
///
/// # Panics
///
/// Panics when `universe < entries` (the cardinality would be
/// unsatisfiable).
pub fn synthetic_map(seed: u64, entries: usize, universe: u64) -> RatioMap<u32> {
    assert!(
        universe >= entries as u64,
        "universe ({universe}) must admit {entries} distinct keys"
    );
    let mut taken: HashSet<u32> = HashSet::with_capacity(entries);
    let weights: Vec<(u32, f64)> = (0..entries)
        .map(|i| {
            let mut key = (noise::mix(&[seed, i as u64]) % universe) as u32;
            while !taken.insert(key) {
                key = ((u64::from(key) + 1) % universe) as u32;
            }
            let w = 1.0 + noise::uniform(&[seed, 0xF00D, i as u64]) * 9.0;
            (key, w)
        })
        .collect();
    RatioMap::from_weights(weights).expect("positive weights") // crp-lint: allow(CRP001) — weights are drawn from [1, 10], always positive
}

/// A batch of synthetic ratio maps for clustering/selection benches.
pub fn synthetic_maps(count: usize, entries: usize, universe: u64) -> Vec<(usize, RatioMap<u32>)> {
    (0..count)
        .map(|i| (i, synthetic_map(i as u64, entries, universe)))
        .collect()
}

/// A small but fully real world: scenario + 6 hours of observations.
pub fn observed_scenario(
    seed: u64,
    candidates: usize,
    clients: usize,
) -> (Scenario, CrpService<HostId, ReplicaId>, SimTime) {
    let scenario = Scenario::build(ScenarioConfig {
        seed,
        candidate_servers: candidates,
        clients,
        cdn_scale: 0.4,
        ..ScenarioConfig::default()
    });
    let end = SimTime::from_hours(6);
    let service = scenario.observe_all(
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );
    (scenario, service, end)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_maps_are_valid_and_deterministic() {
        let a = synthetic_map(5, 8, 100);
        let b = synthetic_map(5, 8, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn synthetic_map_cardinality_survives_collisions() {
        // A tight universe forces key collisions; the probe must still
        // deliver exactly the requested cardinality.
        for (entries, universe) in [(64usize, 64u64), (50, 53), (8, 8)] {
            for seed in 0..5u64 {
                let m = synthetic_map(seed, entries, universe);
                assert_eq!(m.len(), entries, "seed {seed} ({entries}/{universe})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "must admit")]
    fn synthetic_map_rejects_unsatisfiable_universe() {
        let _ = synthetic_map(0, 10, 9);
    }

    #[test]
    fn observed_scenario_is_usable() {
        let (scenario, service, _end) = observed_scenario(1, 4, 2);
        assert_eq!(scenario.candidates().len(), 4);
        assert!(service.node_count() > 0);
    }
}
