//! Minimal command-line parsing shared by the experiment binaries.

use std::collections::HashMap;

/// Flags common to every experiment binary.
///
/// Unknown flags abort with a message; every flag takes one value:
/// `--seed 7 --clients 200 --candidates 60 --hours 12 --scale 0.5`.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalArgs {
    /// Master seed (default 42).
    pub seed: u64,
    /// Client population size (default: per-experiment paper scale).
    pub clients: Option<usize>,
    /// Candidate-server population size.
    pub candidates: Option<usize>,
    /// Observation-campaign length in hours.
    pub hours: Option<u64>,
    /// CDN footprint scale.
    pub scale: Option<f64>,
    /// Output directory for CSV series (default `results`).
    pub out_dir: String,
    /// Telemetry output directory; `None` leaves telemetry disabled.
    pub telemetry: Option<String>,
    /// Wall-clock profile output directory; `None` leaves profiling
    /// disabled.
    pub profile: Option<String>,
    /// Audit output directory: enables decision provenance and drift
    /// scanning, writing `<dir>/<experiment>_provenance.json` and
    /// `<dir>/<experiment>_drift.json`. `None` leaves auditing disabled.
    pub audit: Option<String>,
    /// Live-observability output directory: enables the SimTime
    /// time-series store, causal tracing, and the SLO alert engine,
    /// writing `<dir>/<experiment>_timeseries.json`,
    /// `<dir>/<experiment>_traces.json`, and
    /// `<dir>/<experiment>_alerts.json`. `None` leaves all three off.
    pub live: Option<String>,
    /// Memory-attribution output directory: arms the
    /// [`crp_telemetry::mem`] allocation-attribution layer for the run
    /// and writes the final per-domain snapshot to
    /// `<dir>/<experiment>_mem.json`. `None` leaves attribution
    /// disarmed (its near-zero disabled path).
    pub mem: Option<String>,
}

impl Default for EvalArgs {
    fn default() -> Self {
        EvalArgs {
            seed: 42,
            clients: None,
            candidates: None,
            hours: None,
            scale: None,
            out_dir: "results".to_owned(),
            telemetry: None,
            profile: None,
            audit: None,
            live: None,
            mem: None,
        }
    }
}

impl EvalArgs {
    /// Parses `std::env::args`, aborting the process with a usage
    /// message on malformed input.
    pub fn parse() -> EvalArgs {
        Self::try_from_args(std::env::args().skip(1)).unwrap_or_else(|message| {
            eprintln!("{message}");
            eprintln!(
                "usage: [--seed N] [--clients N] [--candidates N] [--hours N] \
                 [--scale X] [--out DIR] [--telemetry DIR] [--profile DIR] [--audit DIR] \
                 [--live DIR] [--mem DIR]"
            );
            std::process::exit(2)
        })
    }

    /// Parses from an explicit argument list (testable core of [`parse`]).
    ///
    /// # Panics
    ///
    /// Panics on unknown flags, missing values, or unparseable numbers;
    /// [`EvalArgs::try_from_args`] is the non-panicking form.
    ///
    /// [`parse`]: EvalArgs::parse
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> EvalArgs {
        Self::try_from_args(args).unwrap_or_else(|message| panic!("{message}"))
    }

    /// Parses from an explicit argument list.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on unknown flags, missing
    /// values, or unparseable numbers.
    pub fn try_from_args<I: IntoIterator<Item = String>>(args: I) -> Result<EvalArgs, String> {
        fn number<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("--{what}: cannot parse `{value}`"))
        }

        let mut map: HashMap<String, String> = HashMap::new();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let key = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument `{flag}`; flags look like --seed 7"))?
                .to_owned();
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} requires a value"))?;
            map.insert(key, value);
        }
        let mut out = EvalArgs::default();
        for (k, v) in map {
            match k.as_str() {
                "seed" => out.seed = number(&v, "seed takes an integer")?,
                "clients" => out.clients = Some(number(&v, "clients takes an integer")?),
                "candidates" => out.candidates = Some(number(&v, "candidates takes an integer")?),
                "hours" => out.hours = Some(number(&v, "hours takes an integer")?),
                "scale" => out.scale = Some(number(&v, "scale takes a float")?),
                "out" => out.out_dir = v,
                "telemetry" => out.telemetry = Some(v),
                "profile" => out.profile = Some(v),
                "audit" => out.audit = Some(v),
                "live" => out.live = Some(v),
                "mem" => out.mem = Some(v),
                other => return Err(format!("unknown flag --{other}")),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> EvalArgs {
        EvalArgs::from_args(s.split_whitespace().map(str::to_owned))
    }

    #[test]
    fn defaults_when_empty() {
        let a = parse("");
        assert_eq!(a, EvalArgs::default());
        assert_eq!(a.seed, 42);
    }

    #[test]
    fn parses_all_flags() {
        let a = parse(
            "--seed 7 --clients 100 --candidates 30 --hours 12 --scale 0.5 --out /tmp/r \
             --telemetry /tmp/t --profile /tmp/p --audit /tmp/a --live /tmp/l --mem /tmp/m",
        );
        assert_eq!(a.seed, 7);
        assert_eq!(a.clients, Some(100));
        assert_eq!(a.candidates, Some(30));
        assert_eq!(a.hours, Some(12));
        assert_eq!(a.scale, Some(0.5));
        assert_eq!(a.out_dir, "/tmp/r");
        assert_eq!(a.telemetry.as_deref(), Some("/tmp/t"));
        assert_eq!(a.profile.as_deref(), Some("/tmp/p"));
        assert_eq!(a.audit.as_deref(), Some("/tmp/a"));
        assert_eq!(a.live.as_deref(), Some("/tmp/l"));
        assert_eq!(a.mem.as_deref(), Some("/tmp/m"));
    }

    #[test]
    fn telemetry_profile_audit_and_live_default_off() {
        let a = parse("--seed 3");
        assert_eq!(a.telemetry, None);
        assert_eq!(a.profile, None);
        assert_eq!(a.audit, None);
        assert_eq!(a.live, None);
        assert_eq!(a.mem, None);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown_flag() {
        let _ = parse("--bogus 1");
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn rejects_missing_value() {
        let _ = parse("--seed");
    }
}
