//! Experiment output: stdout tables and CSV series.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Prints a section header matching the paper's table/figure ids.
pub fn section(id: &str, title: &str) {
    println!();
    println!("=== {id}: {title} ===");
}

/// Prints an aligned two-column key/value block.
pub fn kv(rows: &[(&str, String)]) {
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in rows {
        println!("  {k:<width$}  {v}");
    }
}

/// Writes a CSV file under `out_dir`, creating the directory as needed.
/// Returns the path written.
///
/// # Panics
///
/// Panics if the directory or file cannot be written — experiment output
/// is the whole point of the binaries, so failing loudly is correct.
pub fn write_csv(out_dir: &str, name: &str, header: &str, rows: &[String]) -> PathBuf {
    // crp-lint: allow(CRP001) — documented panic contract, see above.
    try_write_csv(out_dir, name, header, rows).expect("write results csv")
}

/// Fallible form of [`write_csv`] for callers that handle IO errors.
///
/// # Errors
///
/// Returns any error from creating the directory or writing the file.
pub fn try_write_csv(
    out_dir: &str,
    name: &str,
    header: &str,
    rows: &[String],
) -> io::Result<PathBuf> {
    let dir = Path::new(out_dir);
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut f = fs::File::create(&path)?;
    writeln!(f, "{header}")?;
    for row in rows {
        writeln!(f, "{row}")?;
    }
    println!("  [wrote {}]", path.display());
    Ok(path)
}

/// Writes a gnuplot script rendering a previously-written CSV as the
/// paper-style figure (one line per listed column). Returns the script
/// path; render with `gnuplot results/<name>.gp`.
///
/// # Panics
///
/// Panics if the directory or file cannot be written, or `columns` is
/// empty.
pub fn write_gnuplot(
    out_dir: &str,
    name: &str,
    title: &str,
    ylabel: &str,
    csv_name: &str,
    columns: &[(usize, &str)],
) -> PathBuf {
    assert!(!columns.is_empty(), "need at least one column to plot");
    try_write_gnuplot(out_dir, name, title, ylabel, csv_name, columns)
        // crp-lint: allow(CRP001) — documented panic contract, see above.
        .expect("write gnuplot script")
}

/// Fallible form of [`write_gnuplot`] for callers that handle IO
/// errors. `columns` must be non-empty (checked by the panicking
/// wrapper; here an empty list yields a script with an empty plot
/// list).
///
/// # Errors
///
/// Returns any error from creating the directory or writing the file.
pub fn try_write_gnuplot(
    out_dir: &str,
    name: &str,
    title: &str,
    ylabel: &str,
    csv_name: &str,
    columns: &[(usize, &str)],
) -> io::Result<PathBuf> {
    let dir = Path::new(out_dir);
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.gp"));
    let mut f = fs::File::create(&path)?;
    writeln!(f, "set datafile separator ','")?;
    writeln!(f, "set key top left")?;
    writeln!(f, "set title '{title}'")?;
    writeln!(f, "set xlabel 'client (sorted per curve)'")?;
    writeln!(f, "set ylabel '{ylabel}'")?;
    writeln!(f, "set terminal pngcairo size 900,540")?;
    writeln!(f, "set output '{name}.png'")?;
    let plots: Vec<String> = columns
        .iter()
        .map(|(col, label)| format!("'{csv_name}' using 1:{col} with lines lw 2 title '{label}'"))
        .collect();
    writeln!(f, "plot {}", plots.join(", \\\n     "))?;
    println!(
        "  [wrote {} — render with `gnuplot {}`]",
        path.display(),
        path.display()
    );
    Ok(path)
}

/// Sorted copy of a series — the paper plots per-client curves sorted
/// ascending, each curve independently.
pub fn sorted_series(values: &[f64]) -> Vec<f64> {
    let mut v: Vec<f64> = values.iter().copied().filter(|x| x.is_finite()).collect();
    v.sort_by(f64::total_cmp);
    v
}

/// The `q`-quantile (0..=1) of an unsorted series, or `None` if empty.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    let sorted = sorted_series(values);
    if sorted.is_empty() {
        return None;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    Some(sorted[idx])
}

/// Mean of a series, or `None` if empty.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Renders a compact quantile summary line for a series.
pub fn summary_line(values: &[f64]) -> String {
    match (
        quantile(values, 0.1),
        quantile(values, 0.5),
        quantile(values, 0.9),
        mean(values),
    ) {
        (Some(p10), Some(p50), Some(p90), Some(m)) => {
            format!(
                "n={} mean={m:.1} p10={p10:.1} p50={p50:.1} p90={p90:.1}",
                values.len()
            )
        }
        _ => "n=0".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_series() {
        let v = vec![4.0, 1.0, 3.0, 2.0, 5.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        assert_eq!(mean(&v), Some(3.0));
    }

    #[test]
    fn empty_series() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(mean(&[]), None);
        assert_eq!(summary_line(&[]), "n=0");
    }

    #[test]
    fn sorted_series_drops_non_finite() {
        let v = vec![2.0, f64::INFINITY, 1.0, f64::NAN];
        assert_eq!(sorted_series(&v), vec![1.0, 2.0]);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("crp-eval-test");
        let path = write_csv(
            dir.to_str().unwrap(),
            "t.csv",
            "a,b",
            &["1,2".to_owned(), "3,4".to_owned()],
        );
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
    }

    #[test]
    #[should_panic(expected = "quantile must be")]
    fn quantile_range_checked() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn gnuplot_script_references_all_columns() {
        let dir = std::env::temp_dir().join("crp-eval-gp-test");
        let path = write_gnuplot(
            dir.to_str().unwrap(),
            "figx",
            "a title",
            "ms",
            "figx.csv",
            &[(2, "alpha"), (3, "beta")],
        );
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("using 1:2"));
        assert!(content.contains("using 1:3"));
        assert!(content.contains("'alpha'"));
        assert!(content.contains("set output 'figx.png'"));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn gnuplot_requires_columns() {
        let dir = std::env::temp_dir().join("crp-eval-gp-test2");
        let _ = write_gnuplot(dir.to_str().unwrap(), "f", "t", "y", "f.csv", &[]);
    }
}
