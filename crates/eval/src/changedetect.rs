//! Detection-quality metrics for the change-detection experiment.
//!
//! The `change_detection` binary replays a scripted infrastructure-event
//! suite ([`EventLog`] ground truth) and runs the online detector
//! ([`DetectionReport`]). This module joins the two: every detection is
//! matched to the most recent compatible ground-truth event, matched
//! events get a detection latency, unmatched detections become false
//! alarms, and each event gets a ratio-map re-convergence time. The
//! result serializes into `results/change_detection.json`.

use crp_audit::detect::{ChangeClass, DetectionReport};
use crp_cdn::{EventClass, EventLog, EventRecord};
use serde::{Deserialize, Serialize};

/// Matching rules joining detections to ground truth.
#[derive(Clone, Debug, PartialEq)]
pub struct MatchConfig {
    /// How long after an event's direct effect ends a detection may
    /// still be credited to it (window-policy tails keep ratio maps
    /// moving well past the event itself).
    pub horizon_ms: u64,
    /// Re-convergence level as a multiple of the scope's pre-event
    /// drift baseline.
    pub quiesce_ratio: f64,
    /// Absolute mean-L1 floor for the re-convergence level (covers
    /// scopes whose baseline had not formed at event onset).
    pub quiesce_floor: f64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            horizon_ms: 3 * 3_600_000,
            quiesce_ratio: 1.5,
            quiesce_floor: 0.2,
        }
    }
}

/// Does detector class `got` plausibly report ground-truth event class
/// `want`? Every event moves ratio maps, so the remap/drift/reshape
/// signals are always acceptable; `NewReplicas` additionally credits
/// the two classes that introduce genuinely fresh replica keys.
pub fn class_compatible(want: EventClass, got: ChangeClass) -> bool {
    match got {
        ChangeClass::MassRemap | ChangeClass::DriftBurst | ChangeClass::ClusterReshape => true,
        ChangeClass::NewReplicas => matches!(
            want,
            EventClass::RegionalPoolFlip | EventClass::FootprintExpansion
        ),
    }
}

/// Does a detection scope match an event scope? `"global"` on either
/// side matches anything: a big regional event echoes globally and a
/// global event echoes in every region.
pub fn scope_compatible(event_region: &str, detection_scope: &str) -> bool {
    event_region == "global" || detection_scope == "global" || event_region == detection_scope
}

/// Per-event outcome after matching.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EventOutcome {
    /// Ground-truth class label.
    pub class: String,
    /// Ground-truth region slug (or `"global"`).
    pub region: String,
    /// Event onset (SimTime ms).
    pub at_ms: u64,
    /// End of the event's direct effect (SimTime ms).
    pub until_ms: u64,
    /// Whether any detection was credited to this event.
    pub detected: bool,
    /// `detected_ms − at_ms` of the earliest credited detection; −1
    /// when undetected.
    pub detection_latency_ms: i64,
    /// Class of the earliest credited detection (empty when
    /// undetected).
    pub detected_class: String,
    /// Scope of the earliest credited detection (empty when
    /// undetected).
    pub detected_scope: String,
    /// Number of detections credited to this event.
    pub detections: u64,
    /// First time after `until_ms` at which the affected scope's mean
    /// L1 drift stayed at or below the quiesce level for two
    /// consecutive windows; −1 if it never re-converged in the scan.
    pub reconvergence_ms: i64,
}

/// One unmatched detection.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FalseAlarm {
    /// When it was raised (SimTime ms).
    pub detected_ms: u64,
    /// Detector class label.
    pub class: String,
    /// Detection scope.
    pub scope: String,
    /// Signal magnitude at raise time.
    pub magnitude: f64,
}

/// The full evaluation: per-event outcomes plus aggregate quality.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectionEval {
    /// Scripted ground-truth events evaluated.
    pub events: Vec<EventOutcome>,
    /// Detections that failed to match any event.
    pub false_alarms: Vec<FalseAlarm>,
    /// Total detections the detector raised.
    pub detections_total: u64,
    /// Detections credited to some ground-truth event.
    pub detections_matched: u64,
    /// `detections_matched / detections_total` (1 when nothing raised).
    pub precision: f64,
    /// Detected events / total events (1 when no events scripted).
    pub recall: f64,
    /// Unmatched detections per simulated day of scanned time.
    pub false_alarm_rate_per_day: f64,
    /// Mean detection latency over detected events, in ms (−1 when
    /// nothing was detected).
    pub mean_detection_latency_ms: f64,
    /// Every scripted event was detected.
    pub all_events_detected: bool,
}

/// Joins a detection report against ground truth.
///
/// Each detection is credited to the **most recently started**
/// compatible event whose active span `[at_ms, until_ms + horizon]`
/// contains the detection time and whose class and scope are
/// compatible. An event's latency is taken from its earliest credited
/// detection. Detections crediting no event are false alarms.
pub fn evaluate(log: &EventLog, report: &DetectionReport, cfg: &MatchConfig) -> DetectionEval {
    let mut outcomes: Vec<EventOutcome> = log
        .records
        .iter()
        .map(|r| EventOutcome {
            class: r.class.label().to_owned(),
            region: r.region.clone(),
            at_ms: r.at_ms,
            until_ms: r.until_ms,
            detected: false,
            detection_latency_ms: -1,
            detected_class: String::new(),
            detected_scope: String::new(),
            detections: 0,
            reconvergence_ms: reconvergence(r, report, cfg),
        })
        .collect();

    let mut false_alarms = Vec::new();
    for d in &report.changes {
        // Candidate events: an exact scope match outranks a wildcard
        // one (a localized detection credits the event in its own
        // region even when a global event is more recent), then most
        // recent onset wins; ties break toward the earlier record so
        // credit assignment is deterministic.
        let candidate = log
            .records
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                d.detected_ms >= r.at_ms
                    && d.detected_ms <= r.until_ms.saturating_add(cfg.horizon_ms)
                    && class_compatible(r.class, d.class)
                    && scope_compatible(&r.region, &d.scope)
            })
            .max_by_key(|(i, r)| (r.region == d.scope, r.at_ms, std::cmp::Reverse(*i)));
        match candidate {
            Some((i, _)) => {
                let o = &mut outcomes[i];
                o.detections += 1;
                let latency = d.detected_ms.saturating_sub(o.at_ms) as i64;
                if !o.detected || latency < o.detection_latency_ms {
                    o.detected = true;
                    o.detection_latency_ms = latency;
                    o.detected_class = d.class.label().to_owned();
                    o.detected_scope = d.scope.clone();
                }
            }
            None => false_alarms.push(FalseAlarm {
                detected_ms: d.detected_ms,
                class: d.class.label().to_owned(),
                scope: d.scope.clone(),
                magnitude: d.magnitude,
            }),
        }
    }

    let detections_total = report.changes.len() as u64;
    let detections_matched = detections_total - false_alarms.len() as u64;
    let detected_events = outcomes.iter().filter(|o| o.detected).count() as u64;
    let latencies: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.detected)
        .map(|o| o.detection_latency_ms as f64)
        .collect();
    let scanned_ms = report
        .windows
        .last()
        .map_or(0, |w| w.to_ms.saturating_sub(report.windows[0].from_ms));
    let days = scanned_ms as f64 / 86_400_000.0;
    DetectionEval {
        detections_total,
        detections_matched,
        precision: if detections_total == 0 {
            1.0
        } else {
            detections_matched as f64 / detections_total as f64
        },
        recall: if outcomes.is_empty() {
            1.0
        } else {
            detected_events as f64 / outcomes.len() as f64
        },
        false_alarm_rate_per_day: if days > 0.0 {
            false_alarms.len() as f64 / days
        } else {
            0.0
        },
        mean_detection_latency_ms: if latencies.is_empty() {
            -1.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        },
        all_events_detected: outcomes.iter().all(|o| o.detected),
        events: outcomes,
        false_alarms,
    }
}

/// First time after the event's direct effect ended at which the
/// affected scope's mean L1 stayed at or below the quiesce level for
/// two consecutive windows. The level is the scope's drift baseline *at
/// onset* scaled by `quiesce_ratio`, floored at `quiesce_floor`.
fn reconvergence(event: &EventRecord, report: &DetectionReport, cfg: &MatchConfig) -> i64 {
    let scope = if event.region == "global" {
        "global"
    } else {
        &event.region
    };
    let onset_baseline = report
        .windows
        .iter()
        .find(|w| w.to_ms > event.at_ms)
        .and_then(|w| w.group(scope))
        .map_or(0.0, |g| g.baseline_l1);
    let level = (cfg.quiesce_ratio * onset_baseline).max(cfg.quiesce_floor);
    let mut streak = 0u32;
    let mut streak_start = 0u64;
    for w in report.windows.iter().filter(|w| w.to_ms >= event.until_ms) {
        let quiet = w.group(scope).is_none_or(|g| g.mean_l1 <= level);
        if quiet {
            if streak == 0 {
                streak_start = w.from_ms;
            }
            streak += 1;
            if streak == 2 {
                return streak_start as i64;
            }
        } else {
            streak = 0;
        }
    }
    -1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_audit::detect::{DetectWindow, DetectedChange, GroupWindow};

    fn window(from_h: u64, to_h: u64, scope_l1: &[(&str, f64)]) -> DetectWindow {
        DetectWindow {
            from_ms: from_h * 3_600_000,
            to_ms: to_h * 3_600_000,
            cluster_distance: -1.0,
            groups: scope_l1
                .iter()
                .map(|(s, l1)| GroupWindow {
                    scope: (*s).to_owned(),
                    hosts_compared: 10,
                    mean_l1: *l1,
                    baseline_l1: 0.1,
                    ..GroupWindow::default()
                })
                .collect(),
        }
    }

    fn change(h: u64, class: ChangeClass, scope: &str) -> DetectedChange {
        DetectedChange {
            onset_ms: (h - 1) * 3_600_000,
            detected_ms: h * 3_600_000,
            class,
            scope: scope.to_owned(),
            hosts_affected: 5,
            magnitude: 0.5,
            replicas: vec![],
        }
    }

    fn record(class: EventClass, region: &str, at_h: u64, until_h: u64) -> EventRecord {
        EventRecord {
            at_ms: at_h * 3_600_000,
            until_ms: until_h * 3_600_000,
            class,
            region: region.to_owned(),
            replicas: vec![1],
            detail: String::new(),
        }
    }

    fn report(windows: Vec<DetectWindow>, changes: Vec<DetectedChange>) -> DetectionReport {
        DetectionReport {
            interval_ms: 3_600_000,
            snapshots: windows.len() as u64 + 1,
            windows,
            changes,
        }
    }

    #[test]
    fn matched_detection_scores_latency_and_recall() {
        let log = EventLog {
            records: vec![record(EventClass::RegionalPoolFlip, "europe", 4, 4)],
        };
        let windows = (0..10)
            .map(|h| {
                let l1 = if h == 4 { 1.2 } else { 0.05 };
                window(h, h + 1, &[("global", l1 / 2.0), ("europe", l1)])
            })
            .collect();
        let changes = vec![change(5, ChangeClass::MassRemap, "europe")];
        let eval = evaluate(&log, &report(windows, changes), &MatchConfig::default());
        assert!(eval.all_events_detected);
        assert_eq!(eval.detections_matched, 1);
        assert!(eval.false_alarms.is_empty());
        assert_eq!(eval.precision, 1.0);
        assert_eq!(eval.recall, 1.0);
        assert_eq!(eval.events[0].detection_latency_ms, 3_600_000);
        // The burst at hour 4–5 subsides immediately after: the first
        // two quiet windows end at hour 6, so re-convergence is the
        // start of that pair.
        assert_eq!(eval.events[0].reconvergence_ms, 5 * 3_600_000);
    }

    #[test]
    fn unmatched_detection_is_a_false_alarm() {
        let log = EventLog {
            records: vec![record(EventClass::DatacenterOutage, "east-asia", 20, 22)],
        };
        let windows = (0..10)
            .map(|h| window(h, h + 1, &[("global", 0.05)]))
            .collect();
        // Wrong time (no event active) — unmatched.
        let changes = vec![change(5, ChangeClass::MassRemap, "global")];
        let eval = evaluate(&log, &report(windows, changes), &MatchConfig::default());
        assert!(!eval.all_events_detected);
        assert_eq!(eval.false_alarms.len(), 1);
        assert_eq!(eval.precision, 0.0);
        assert_eq!(eval.recall, 0.0);
        assert!(eval.false_alarm_rate_per_day > 0.0);
        assert_eq!(eval.mean_detection_latency_ms, -1.0);
    }

    #[test]
    fn detection_credits_most_recent_compatible_event() {
        // Outage at hour 2, recovery at hour 6: a detection at hour 7
        // belongs to the recovery, not the (still-in-horizon) outage.
        let log = EventLog {
            records: vec![
                record(EventClass::DatacenterOutage, "europe", 2, 6),
                record(EventClass::DatacenterRecovery, "europe", 6, 6),
            ],
        };
        let windows = (0..10)
            .map(|h| window(h, h + 1, &[("europe", 0.05)]))
            .collect();
        let changes = vec![
            change(3, ChangeClass::MassRemap, "europe"),
            change(7, ChangeClass::MassRemap, "europe"),
        ];
        let eval = evaluate(&log, &report(windows, changes), &MatchConfig::default());
        assert!(eval.all_events_detected);
        assert_eq!(eval.events[0].detection_latency_ms, 3_600_000);
        assert_eq!(eval.events[1].detection_latency_ms, 3_600_000);
    }

    #[test]
    fn new_replica_class_only_credits_fresh_key_events() {
        assert!(class_compatible(
            EventClass::FootprintExpansion,
            ChangeClass::NewReplicas
        ));
        assert!(class_compatible(
            EventClass::RegionalPoolFlip,
            ChangeClass::NewReplicas
        ));
        assert!(!class_compatible(
            EventClass::DatacenterOutage,
            ChangeClass::NewReplicas
        ));
        assert!(class_compatible(
            EventClass::LoadBalancerPolicyChange,
            ChangeClass::DriftBurst
        ));
    }

    #[test]
    fn scope_matching_treats_global_as_wildcard() {
        assert!(scope_compatible("global", "europe"));
        assert!(scope_compatible("europe", "global"));
        assert!(scope_compatible("europe", "europe"));
        assert!(!scope_compatible("europe", "east-asia"));
    }

    #[test]
    fn unconverged_scope_reports_sentinel() {
        let log = EventLog {
            records: vec![record(EventClass::FlashCrowd, "europe", 1, 2)],
        };
        // Permanently elevated drift: never re-converges.
        let windows = (0..8)
            .map(|h| window(h, h + 1, &[("europe", 0.9)]))
            .collect();
        let eval = evaluate(&log, &report(windows, vec![]), &MatchConfig::default());
        assert_eq!(eval.events[0].reconvergence_ms, -1);
    }

    #[test]
    fn eval_round_trips_through_json() {
        let log = EventLog {
            records: vec![record(EventClass::RegionalPoolFlip, "europe", 4, 4)],
        };
        let windows = (0..6)
            .map(|h| window(h, h + 1, &[("europe", 0.05)]))
            .collect();
        let changes = vec![change(5, ChangeClass::MassRemap, "europe")];
        let eval = evaluate(&log, &report(windows, changes), &MatchConfig::default());
        let text = serde_json::to_string(&eval).expect("serialize");
        let value = serde_json::parse(&text).expect("parse");
        let back = DetectionEval::from_value(&value).expect("shape");
        assert_eq!(back, eval);
    }
}
