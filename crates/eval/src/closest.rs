//! The closest-node selection experiment kernel (§V-A, Figs. 4–5, 8–9).
//!
//! One run reproduces the paper's pipeline end to end:
//!
//! 1. build the world (candidate servers, DNS-server clients, CDN);
//! 2. run the observation campaign (recursive DNS probes on a fixed
//!    interval) for every host;
//! 3. build the Meridian overlay over the candidates — with the
//!    deployment pathologies the paper documents, when enabled;
//! 4. for every client, ask CRP (Top-1 and Top-5) and Meridian for the
//!    closest candidate and score both against the ground-truth
//!    RTT-ordered candidate list.

use crp::{Scenario, ScenarioConfig};
use crp_cdn::ReplicaId;
use crp_core::{CrpService, SimilarityMetric, WindowPolicy};
use crp_meridian::{FaultPlan, MeridianConfig, MeridianOverlay};
use crp_netsim::{noise, HostId, SimDuration, SimTime};

use crate::cli::EvalArgs;

/// Configuration of a closest-node experiment run.
#[derive(Clone, Debug)]
pub struct ClosestConfig {
    /// Master seed.
    pub seed: u64,
    /// Candidate servers (paper: 240 Meridian-active PlanetLab nodes).
    pub candidates: usize,
    /// Clients (paper: 1,000 DNS servers from the King data set).
    pub clients: usize,
    /// CDN footprint scale.
    pub cdn_scale: f64,
    /// Observation-campaign length.
    pub observe_hours: u64,
    /// Probe interval.
    pub probe_interval: SimDuration,
    /// Ratio-map window policy.
    pub window: WindowPolicy,
    /// Inject the paper's Meridian deployment faults.
    pub inject_faults: bool,
    /// Apply the §VI CDN-owned-address filter to probes.
    pub filter_cdn_owned: bool,
}

impl ClosestConfig {
    /// The paper-scale configuration, with overrides from common flags.
    pub fn paper(args: &EvalArgs) -> Self {
        ClosestConfig {
            seed: args.seed,
            candidates: args.candidates.unwrap_or(240),
            clients: args.clients.unwrap_or(1_000),
            cdn_scale: args.scale.unwrap_or(1.0),
            observe_hours: args.hours.unwrap_or(36),
            probe_interval: SimDuration::from_mins(10),
            window: WindowPolicy::LastProbes(30),
            inject_faults: true,
            filter_cdn_owned: false,
        }
    }

    /// A fast configuration for tests and smoke runs.
    pub fn smoke(seed: u64) -> Self {
        ClosestConfig {
            seed,
            candidates: 24,
            clients: 16,
            cdn_scale: 0.3,
            observe_hours: 6,
            probe_interval: SimDuration::from_mins(10),
            window: WindowPolicy::LastProbes(30),
            inject_faults: true,
            filter_cdn_owned: false,
        }
    }
}

/// Per-client outcome of the experiment, all latencies in milliseconds
/// measured against the evaluation window.
#[derive(Clone, Debug)]
pub struct ClientOutcome {
    /// The client host.
    pub client: HostId,
    /// RTT to the truly closest candidate.
    pub optimal_ms: f64,
    /// The truly closest candidate (ground truth).
    pub optimal_selected: HostId,
    /// RTT to Meridian's recommendation.
    pub meridian_ms: f64,
    /// Rank of Meridian's recommendation (0 = optimal).
    pub meridian_rank: usize,
    /// Meridian's recommended candidate.
    pub meridian_selected: HostId,
    /// RTT to CRP's Top-1 recommendation.
    pub crp_top1_ms: f64,
    /// Rank of CRP's Top-1 (0 = optimal).
    pub crp_top1_rank: usize,
    /// CRP's Top-1 candidate.
    pub crp_top1_selected: HostId,
    /// Similarity score behind the Top-1 pick (0 when the client shares
    /// no replica with it) — the audit layer uses this to separate weak
    /// picks from confidently wrong ones.
    pub crp_top1_score: f64,
    /// Mean RTT over CRP's Top-5 recommendations.
    pub crp_top5_ms: f64,
    /// Whether the client shared any replica with any candidate.
    pub crp_has_signal: bool,
}

/// The assembled world plus per-client outcomes.
pub struct ClosestRun {
    /// The scenario (network, CDN, populations).
    pub scenario: Scenario,
    /// The observation service after the campaign.
    pub service: CrpService<HostId, ReplicaId>,
    /// The Meridian overlay used for the comparison.
    pub overlay: MeridianOverlay,
    /// When the evaluation snapshot was taken.
    pub eval_time: SimTime,
    /// Per-client results (clients CRP could not position at all are
    /// omitted, mirroring the paper's smaller plotted populations).
    pub outcomes: Vec<ClientOutcome>,
}

/// Runs the full closest-node experiment.
pub fn run_closest(cfg: &ClosestConfig) -> ClosestRun {
    crp_telemetry::profile_scope!("eval.run_closest");
    crp_telemetry::mem_domain!("eval.closest");
    let scenario = Scenario::build(ScenarioConfig {
        seed: cfg.seed,
        candidate_servers: cfg.candidates,
        clients: cfg.clients,
        cdn_scale: cfg.cdn_scale,
        filter_cdn_owned: cfg.filter_cdn_owned,
        ..ScenarioConfig::default()
    });
    let start = SimTime::ZERO;
    let end = SimTime::from_hours(cfg.observe_hours);
    let service = scenario.observe_all(
        start,
        end,
        cfg.probe_interval,
        cfg.window,
        SimilarityMetric::Cosine,
    );

    let faults = if cfg.inject_faults {
        FaultPlan::paper_like(scenario.candidates(), 17)
    } else {
        FaultPlan::none()
    };
    let overlay = MeridianOverlay::build(
        scenario.network(),
        scenario.candidates(),
        MeridianConfig {
            seed: cfg.seed,
            ..MeridianConfig::default()
        },
        faults,
    );

    // Ground truth over the last two hours of the campaign.
    let truth_start = SimTime::from_hours(cfg.observe_hours.saturating_sub(2).max(1) - 1);
    let eval_time = end;
    let mut outcomes = Vec::with_capacity(scenario.clients().len());

    for (i, &client) in scenario.clients().iter().enumerate() {
        let Ok(ranking) = service.closest(&client, scenario.candidates().to_vec(), eval_time)
        else {
            continue; // client never observed a redirection
        };
        if ranking.is_empty() {
            continue;
        }
        let order = scenario.rtt_ordered_candidates(client, truth_start, end);
        let rank_of = |host: HostId| -> usize {
            order
                .iter()
                .position(|(c, _)| *c == host)
                .expect("candidates are ranked") // crp-lint: allow(CRP001) — order contains every candidate by construction
        };
        let ms_of = |host: HostId| -> f64 {
            order
                .iter()
                .find(|(c, _)| *c == host)
                .expect("candidates are ranked") // crp-lint: allow(CRP001) — order contains every candidate by construction
                .1
                .millis()
        };

        let crp_top1 = **ranking.top_k(1).first().expect("non-empty ranking"); // crp-lint: allow(CRP001) — ranking is built from a non-empty candidate list
                                                                               // Top-5 averages only candidates CRP has signal for (shared
                                                                               // replicas): zero-similarity entries carry no position
                                                                               // information, and the paper's semantics for them is "not near",
                                                                               // never "recommend".
        let top5: Vec<HostId> = ranking
            .entries()
            .iter()
            .filter(|(_, s)| *s > 0.0)
            .take(5)
            .map(|(c, _)| *c)
            .collect();
        let crp_top5_ms = if top5.is_empty() {
            ms_of(crp_top1)
        } else {
            top5.iter().map(|c| ms_of(*c)).sum::<f64>() / top5.len() as f64
        };

        // The paper used "the measuring PlanetLab node" as the entry
        // point; we draw a deterministic entry per client.
        let entry = scenario.candidates()[(noise::mix(&[cfg.seed, 0xE1, i as u64])
            % scenario.candidates().len() as u64)
            as usize];
        let mq = overlay.closest_node_query(scenario.network(), entry, client, eval_time);

        outcomes.push(ClientOutcome {
            client,
            optimal_ms: order[0].1.millis(),
            optimal_selected: order[0].0,
            meridian_ms: ms_of(mq.selected),
            meridian_rank: rank_of(mq.selected),
            meridian_selected: mq.selected,
            crp_top1_ms: ms_of(crp_top1),
            crp_top1_rank: rank_of(crp_top1),
            crp_top1_selected: crp_top1,
            crp_top1_score: ranking.entries().first().map_or(0.0, |(_, s)| *s),
            crp_top5_ms,
            crp_has_signal: ranking.has_signal(),
        });
    }

    ClosestRun {
        scenario,
        service,
        overlay,
        eval_time,
        outcomes,
    }
}

/// Average CRP Top-1 rank per client over several evaluation instants,
/// scoring each instant against the *instantaneous* RTT ordering — the
/// metric of Figs. 8–9. Clients that cannot be positioned at any
/// evaluation instant are omitted (the paper plots fewer DNS servers at
/// long probe intervals for exactly this reason).
pub fn average_ranks(
    scenario: &Scenario,
    service: &CrpService<HostId, ReplicaId>,
    eval_times: &[SimTime],
) -> Vec<(HostId, f64)> {
    let net = scenario.network();
    let mut out = Vec::new();
    for &client in scenario.clients() {
        let mut ranks = Vec::new();
        for &t in eval_times {
            let Ok(ranking) = service.closest(&client, scenario.candidates().to_vec(), t) else {
                continue;
            };
            // A client that shares no replica with any candidate cannot
            // be positioned at this instant — the paper plots fewer DNS
            // servers at long probe intervals for exactly this reason.
            if !ranking.has_signal() {
                continue;
            }
            let Some(&top1) = ranking.top() else { continue };
            let mut order: Vec<(HostId, f64)> = scenario
                .candidates()
                .iter()
                .map(|&c| (c, net.rtt(client, c, t).millis()))
                .collect();
            order.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
            let rank = order
                .iter()
                .position(|(c, _)| *c == top1)
                .expect("top1 is a candidate"); // crp-lint: allow(CRP001) — top1 came from this candidate list
            ranks.push(rank as f64);
        }
        if !ranks.is_empty() {
            out.push((client, ranks.iter().sum::<f64>() / ranks.len() as f64));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_outcomes() {
        let run = run_closest(&ClosestConfig::smoke(1));
        assert!(
            run.outcomes.len() >= 12,
            "only {} of 16 clients scored",
            run.outcomes.len()
        );
        for o in &run.outcomes {
            assert!(o.optimal_ms <= o.crp_top1_ms + 1e-9);
            assert!(o.optimal_ms <= o.meridian_ms + 1e-9);
            assert!(o.crp_top1_rank < 24);
            assert!(o.meridian_rank < 24);
        }
    }

    #[test]
    fn crp_beats_random_selection_on_average() {
        let run = run_closest(&ClosestConfig::smoke(2));
        let n_candidates = 24.0;
        let mean_rank = run
            .outcomes
            .iter()
            .map(|o| o.crp_top1_rank as f64)
            .sum::<f64>()
            / run.outcomes.len() as f64;
        // Random selection would average (n-1)/2 = 11.5.
        assert!(
            mean_rank < n_candidates / 2.0 - 2.0,
            "CRP mean rank {mean_rank:.1} is no better than random"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_closest(&ClosestConfig::smoke(3));
        let b = run_closest(&ClosestConfig::smoke(3));
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.client, y.client);
            assert_eq!(x.crp_top1_selected, y.crp_top1_selected);
            assert_eq!(x.meridian_selected, y.meridian_selected);
        }
    }

    #[test]
    fn average_ranks_cover_positionable_clients() {
        let run = run_closest(&ClosestConfig::smoke(4));
        let times = [SimTime::from_hours(5), SimTime::from_hours(6)];
        let ranks = average_ranks(&run.scenario, &run.service, &times);
        assert!(!ranks.is_empty());
        for (_, r) in &ranks {
            assert!(*r >= 0.0 && *r < 24.0);
        }
    }
}
