//! Telemetry wiring shared by the experiment binaries.
//!
//! Each binary calls [`session`] right after parsing its flags. With
//! `--telemetry <dir>` this installs a [`crp_telemetry::JsonlSink`]
//! writing `<dir>/<experiment>.jsonl`; when the returned
//! [`TelemetrySession`] drops at the end of `main`, the aggregated
//! [`TelemetrySummary`] lands in `<dir>/<experiment>_summary.json`.
//! Without the flag nothing is installed and every instrumentation hook
//! across the workspace stays on its near-zero disabled path.
//!
//! The session also owns the **wall-clock** side: with `--profile <dir>`
//! it starts the [`crp_telemetry::profile`] profiler and, on drop,
//! writes the aggregated scope tree to `<dir>/<experiment>_profile.json`.
//! The two outputs never mix — the profile is wall-clock data and is
//! deliberately excluded from any determinism comparison.
//!
//! With `--audit <dir>` the session additionally enables the
//! [`crp_core::explain`] decision-provenance recorder; on drop the
//! drained [`ExplainLog`] lands in `<dir>/<experiment>_provenance.json`.
//! Like telemetry and profiling, provenance is a pure observer: enabling
//! it never changes experiment outputs (`tests/telemetry_determinism.rs`
//! proves this byte-for-byte).
//!
//! With `--live <dir>` the session turns on the live-observability
//! layer: the SimTime [time-series store](crp_telemetry::timeseries),
//! [causal tracing](crp_telemetry::trace), and — at shutdown — the
//! [SLO alert engine](crp_telemetry::alert) replayed over the collected
//! windows. On drop it writes `<dir>/<experiment>_timeseries.json`,
//! `<dir>/<experiment>_traces.json`, and
//! `<dir>/<experiment>_alerts.json`. All three are keyed on simulated
//! time, so the same seeded run reproduces them byte-for-byte.
//!
//! With `--mem <dir>` the session arms the
//! [`crp_telemetry::mem`] allocation-attribution layer for the whole
//! run; on drop the final per-domain snapshot (live/peak/total bytes,
//! allocation counts, size-class histograms) lands in
//! `<dir>/<experiment>_mem.json`. Attribution counts wall-clock-side
//! allocator traffic and never touches SimTime, so arming it cannot
//! change experiment outputs (`tests/telemetry_determinism.rs` phase 12
//! proves this).

use crate::EvalArgs;
use crp_core::explain::ExplainLog;
use crp_telemetry::profile::ProfileNode;
use crp_telemetry::{alert, timeseries, trace};
use crp_telemetry::{JsonlSink, TelemetrySummary};
use std::fs;
use std::path::{Path, PathBuf};

/// Keeps a per-run telemetry collector (and optional profiler) alive;
/// see [`session`].
///
/// Dropping the session finalizes the run: it tears down the global
/// collector and writes the summary JSON next to the JSONL stream, then
/// tears down the profiler (if started) and writes the profile tree.
#[must_use = "bind to a variable that lives until the end of main"]
pub struct TelemetrySession {
    dir: Option<PathBuf>,
    profile_dir: Option<PathBuf>,
    audit_dir: Option<PathBuf>,
    live_dir: Option<PathBuf>,
    mem_dir: Option<PathBuf>,
    experiment: &'static str,
}

impl TelemetrySession {
    /// The audit output directory, when `--audit` was given.
    pub fn audit_dir(&self) -> Option<&Path> {
        self.audit_dir.as_deref()
    }

    /// The live-observability output directory, when `--live` was given.
    pub fn live_dir(&self) -> Option<&Path> {
        self.live_dir.as_deref()
    }

    /// The memory-attribution output directory, when `--mem` was given.
    pub fn mem_dir(&self) -> Option<&Path> {
        self.mem_dir.as_deref()
    }
}

/// Starts telemetry (and, with `--profile`, wall-clock profiling) for
/// `experiment` according to `args`.
///
/// A sink failure (unwritable directory) degrades to metrics-only
/// collection with a warning rather than aborting the experiment.
pub fn session(args: &EvalArgs, experiment: &'static str) -> TelemetrySession {
    let dir = args.telemetry.as_ref().map(PathBuf::from);
    if let Some(dir) = &dir {
        let path = dir.join(format!("{experiment}.jsonl"));
        match JsonlSink::create(&path) {
            Ok(sink) => crp_telemetry::install(Box::new(sink)),
            Err(err) => {
                eprintln!(
                    "[telemetry] cannot create {}: {err}; collecting metrics only",
                    path.display()
                );
                crp_telemetry::install_metrics_only();
            }
        }
    }
    let profile_dir = args.profile.as_ref().map(PathBuf::from);
    if profile_dir.is_some() {
        crp_telemetry::profile::start();
    }
    let audit_dir = args.audit.as_ref().map(PathBuf::from);
    if audit_dir.is_some() {
        crp_core::explain::start();
    }
    let live_dir = args.live.as_ref().map(PathBuf::from);
    if live_dir.is_some() {
        timeseries::start(timeseries::TimeSeriesConfig::default());
        trace::start(trace::TraceConfig::default());
    }
    let mem_dir = args.mem.as_ref().map(PathBuf::from);
    if mem_dir.is_some() {
        crp_telemetry::mem::start();
    }
    TelemetrySession {
        dir,
        profile_dir,
        audit_dir,
        live_dir,
        mem_dir,
        experiment,
    }
}

/// Writes `summary` as JSON to `<dir>/<experiment>_summary.json`.
///
/// # Errors
///
/// Returns any serialization or file-system error.
pub fn write_summary(dir: &Path, summary: &TelemetrySummary) -> std::io::Result<PathBuf> {
    let json = serde_json::to_string(summary)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}_summary.json", summary.experiment));
    fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Writes `log` as JSON to `<dir>/<experiment>_provenance.json`.
///
/// # Errors
///
/// Returns any serialization or file-system error.
pub fn write_provenance(
    dir: &Path,
    experiment: &str,
    log: &ExplainLog,
) -> std::io::Result<PathBuf> {
    let json = serde_json::to_string(log)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{experiment}_provenance.json"));
    fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Writes one live-observability artifact (`timeseries`, `traces`, or
/// `alerts`) to `<dir>/<experiment>_<what>.json`.
///
/// # Errors
///
/// Returns any serialization or file-system error.
pub fn write_live<T: serde::Serialize>(
    dir: &Path,
    experiment: &str,
    what: &str,
    value: &T,
) -> std::io::Result<PathBuf> {
    let json = serde_json::to_string(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{experiment}_{what}.json"));
    fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Writes `tree` as JSON to `<dir>/<experiment>_profile.json`.
///
/// # Errors
///
/// Returns any serialization or file-system error.
pub fn write_profile(dir: &Path, experiment: &str, tree: &ProfileNode) -> std::io::Result<PathBuf> {
    let json = serde_json::to_string(tree)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{experiment}_profile.json"));
    fs::write(&path, json + "\n")?;
    Ok(path)
}

impl Drop for TelemetrySession {
    fn drop(&mut self) {
        if let Some(summary) = crp_telemetry::shutdown(self.experiment) {
            if let Some(dir) = &self.dir {
                match write_summary(dir, &summary) {
                    Ok(path) => println!("  [wrote {}]", path.display()),
                    Err(err) => eprintln!("[telemetry] cannot write summary: {err}"),
                }
            }
        }
        if let Some(tree) = crp_telemetry::profile::finish() {
            if let Some(dir) = &self.profile_dir {
                match write_profile(dir, self.experiment, &tree) {
                    Ok(path) => println!("  [wrote {}]", path.display()),
                    Err(err) => eprintln!("[telemetry] cannot write profile: {err}"),
                }
            }
        }
        if let Some(log) = crp_core::explain::finish() {
            if let Some(dir) = &self.audit_dir {
                match write_provenance(dir, self.experiment, &log) {
                    Ok(path) => println!("  [wrote {}]", path.display()),
                    Err(err) => eprintln!("[telemetry] cannot write provenance: {err}"),
                }
            }
        }
        // Live observability last: the alert engine replays the
        // completed time-series windows, so it needs the store after
        // every instrumented call site has gone quiet.
        let store = timeseries::finish();
        let traces = trace::finish();
        if let Some(dir) = &self.live_dir {
            if let Some(store) = &store {
                let export = store.export();
                match write_live(dir, self.experiment, "timeseries", &export) {
                    Ok(path) => println!("  [wrote {}]", path.display()),
                    Err(err) => eprintln!("[telemetry] cannot write timeseries: {err}"),
                }
                let alerts = alert::AlertEngine::new(alert::default_rules()).evaluate(store);
                for name in alerts.firing() {
                    eprintln!("[live] ALERT firing at end of run: {name}");
                }
                match write_live(dir, self.experiment, "alerts", &alerts) {
                    Ok(path) => println!("  [wrote {}]", path.display()),
                    Err(err) => eprintln!("[telemetry] cannot write alerts: {err}"),
                }
            }
            if let Some(traces) = &traces {
                match write_live(dir, self.experiment, "traces", traces) {
                    Ok(path) => println!("  [wrote {}]", path.display()),
                    Err(err) => eprintln!("[telemetry] cannot write traces: {err}"),
                }
            }
        }
        // Memory attribution very last: everything the other layers
        // allocate while flushing still lands in the snapshot (charged
        // to "(unattributed)" — shutdown traffic, not experiment work).
        if let Some(snap) = crp_telemetry::mem::finish() {
            if let Some(dir) = &self.mem_dir {
                match write_live(dir, self.experiment, "mem", &snap) {
                    Ok(path) => println!("  [wrote {}]", path.display()),
                    Err(err) => eprintln!("[telemetry] cannot write mem snapshot: {err}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_with(dir: Option<&Path>) -> EvalArgs {
        EvalArgs {
            telemetry: dir.map(|d| d.to_string_lossy().into_owned()),
            ..EvalArgs::default()
        }
    }

    // One test drives both the disabled and enabled paths: the session
    // manipulates the process-global collector, so parallel test threads
    // must not share it.
    #[test]
    fn session_lifecycle() {
        let s = session(&args_with(None), "t_disabled");
        assert!(!crp_telemetry::enabled());
        drop(s);
        assert!(crp_telemetry::shutdown("t_disabled").is_none());

        let dir = std::env::temp_dir().join("crp-eval-telemetry-test");
        let _ = fs::remove_dir_all(&dir);
        let s = session(&args_with(Some(&dir)), "t_session");
        crp_telemetry::counter_add("test.calls", 3);
        crp_telemetry::event(5, "test.tick", &[]);
        drop(s);
        assert!(dir.join("t_session.jsonl").exists());
        let raw = fs::read_to_string(dir.join("t_session_summary.json")).expect("summary written");
        let value = serde_json::parse(&raw).expect("valid json");
        let summary = <TelemetrySummary as serde::Deserialize>::from_value(&value).expect("shape");
        assert_eq!(summary.experiment, "t_session");
        assert_eq!(summary.counter("test.calls"), Some(3));
        let _ = fs::remove_dir_all(&dir);

        // Profiling path: --profile starts the profiler and the drop
        // writes the scope tree (the collector global stays untouched).
        let pdir = std::env::temp_dir().join("crp-eval-profile-test");
        let _ = fs::remove_dir_all(&pdir);
        let args = EvalArgs {
            profile: Some(pdir.to_string_lossy().into_owned()),
            ..EvalArgs::default()
        };
        let s = session(&args, "t_profile");
        assert!(crp_telemetry::profile::profiling());
        assert!(
            !crp_telemetry::enabled(),
            "profiling must not enable telemetry"
        );
        {
            crp_telemetry::profile_scope!("phase");
        }
        drop(s);
        assert!(!crp_telemetry::profile::profiling());
        let raw = fs::read_to_string(pdir.join("t_profile_profile.json")).expect("profile written");
        let value = serde_json::parse(&raw).expect("valid json");
        let tree = <ProfileNode as serde::Deserialize>::from_value(&value).expect("shape");
        assert_eq!(tree.name, "root");
        assert!(tree.child("phase").is_some(), "tree: {tree:?}");
        let _ = fs::remove_dir_all(&pdir);

        // Audit path: --audit enables the explain recorder and the drop
        // writes the drained provenance log.
        let adir = std::env::temp_dir().join("crp-eval-audit-test");
        let _ = fs::remove_dir_all(&adir);
        let args = EvalArgs {
            audit: Some(adir.to_string_lossy().into_owned()),
            ..EvalArgs::default()
        };
        let s = session(&args, "t_audit");
        assert!(crp_core::explain::enabled());
        assert_eq!(s.audit_dir(), Some(adir.as_path()));
        crp_core::explain::record_inversion(crp_core::explain::InversionRecord {
            client: "c0".to_owned(),
            selected: "r1".to_owned(),
            selected_rank: 3,
            optimal: "r0".to_owned(),
            top_score: 0.4,
            explained: true,
            reason: "weak signal".to_owned(),
        });
        drop(s);
        assert!(!crp_core::explain::enabled());
        let raw =
            fs::read_to_string(adir.join("t_audit_provenance.json")).expect("provenance written");
        let value = serde_json::parse(&raw).expect("valid json");
        let log = <ExplainLog as serde::Deserialize>::from_value(&value).expect("shape");
        assert_eq!(log.inversions.len(), 1);
        assert_eq!(log.inversions[0].client, "c0");
        let _ = fs::remove_dir_all(&adir);

        // Live path: --live starts the time-series store and tracing;
        // the drop replays the alert rules and writes all three
        // artifacts.
        let ldir = std::env::temp_dir().join("crp-eval-live-test");
        let _ = fs::remove_dir_all(&ldir);
        let args = EvalArgs {
            live: Some(ldir.to_string_lossy().into_owned()),
            ..EvalArgs::default()
        };
        let s = session(&args, "t_live");
        assert!(timeseries::enabled());
        assert!(trace::enabled());
        assert_eq!(s.live_dir(), Some(ldir.as_path()));
        let id = trace::mint(&[7]);
        trace::begin(id, 0, "cdn.redirect");
        crp_telemetry::observe_at(0, "cdn.best_candidate_ms", 12.5);
        drop(s);
        assert!(!timeseries::enabled());
        assert!(!trace::enabled());
        for what in ["timeseries", "traces", "alerts"] {
            let path = ldir.join(format!("t_live_{what}.json"));
            assert!(path.exists(), "missing {}", path.display());
        }
        let raw = fs::read_to_string(ldir.join("t_live_alerts.json")).expect("alerts written");
        let value = serde_json::parse(&raw).expect("valid json");
        let alerts = <alert::AlertLog as serde::Deserialize>::from_value(&value).expect("shape");
        assert!(alerts.rule("ingest-latency-p99").is_some());
        assert!(alerts.firing().is_empty(), "one cheap sample cannot fire");
        let _ = fs::remove_dir_all(&ldir);

        // Mem path: --mem arms allocation attribution and the drop
        // writes the per-domain snapshot. This crate installs the
        // counting allocator, so the snapshot carries real counts.
        let mdir = std::env::temp_dir().join("crp-eval-mem-test");
        let _ = fs::remove_dir_all(&mdir);
        let args = EvalArgs {
            mem: Some(mdir.to_string_lossy().into_owned()),
            ..EvalArgs::default()
        };
        let s = session(&args, "t_mem");
        assert!(crp_telemetry::mem::enabled());
        assert!(
            !crp_telemetry::enabled(),
            "mem attribution must not enable telemetry"
        );
        assert_eq!(s.mem_dir(), Some(mdir.as_path()));
        {
            crp_telemetry::mem_domain!("eval.test_session");
        }
        drop(s);
        assert!(!crp_telemetry::mem::enabled());
        let raw = fs::read_to_string(mdir.join("t_mem_mem.json")).expect("mem snapshot written");
        let value = serde_json::parse(&raw).expect("valid json");
        let snap =
            <crp_telemetry::MemSnapshot as serde::Deserialize>::from_value(&value).expect("shape");
        assert!(
            snap.domain("eval.test_session").is_some(),
            "registered domain missing from snapshot: {snap:?}"
        );
        assert!(
            snap.total_allocs() > 0,
            "counting allocator saw no traffic while armed"
        );
        let _ = fs::remove_dir_all(&mdir);
    }
}
