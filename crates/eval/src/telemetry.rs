//! Telemetry wiring shared by the experiment binaries.
//!
//! Each binary calls [`session`] right after parsing its flags. With
//! `--telemetry <dir>` this installs a [`crp_telemetry::JsonlSink`]
//! writing `<dir>/<experiment>.jsonl`; when the returned
//! [`TelemetrySession`] drops at the end of `main`, the aggregated
//! [`TelemetrySummary`] lands in `<dir>/<experiment>_summary.json`.
//! Without the flag nothing is installed and every instrumentation hook
//! across the workspace stays on its near-zero disabled path.

use crate::EvalArgs;
use crp_telemetry::{JsonlSink, TelemetrySummary};
use std::fs;
use std::path::{Path, PathBuf};

/// Keeps a per-run telemetry collector alive; see [`session`].
///
/// Dropping the session finalizes the run: it tears down the global
/// collector and writes the summary JSON next to the JSONL stream.
#[must_use = "bind to a variable that lives until the end of main"]
pub struct TelemetrySession {
    dir: Option<PathBuf>,
    experiment: &'static str,
}

/// Starts telemetry for `experiment` according to `args`.
///
/// A sink failure (unwritable directory) degrades to metrics-only
/// collection with a warning rather than aborting the experiment.
pub fn session(args: &EvalArgs, experiment: &'static str) -> TelemetrySession {
    let dir = args.telemetry.as_ref().map(PathBuf::from);
    if let Some(dir) = &dir {
        let path = dir.join(format!("{experiment}.jsonl"));
        match JsonlSink::create(&path) {
            Ok(sink) => crp_telemetry::install(Box::new(sink)),
            Err(err) => {
                eprintln!(
                    "[telemetry] cannot create {}: {err}; collecting metrics only",
                    path.display()
                );
                crp_telemetry::install_metrics_only();
            }
        }
    }
    TelemetrySession { dir, experiment }
}

/// Writes `summary` as JSON to `<dir>/<experiment>_summary.json`.
///
/// # Errors
///
/// Returns any serialization or file-system error.
pub fn write_summary(dir: &Path, summary: &TelemetrySummary) -> std::io::Result<PathBuf> {
    let json = serde_json::to_string(summary)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}_summary.json", summary.experiment));
    fs::write(&path, json + "\n")?;
    Ok(path)
}

impl Drop for TelemetrySession {
    fn drop(&mut self) {
        let Some(summary) = crp_telemetry::shutdown(self.experiment) else {
            return;
        };
        let Some(dir) = &self.dir else { return };
        match write_summary(dir, &summary) {
            Ok(path) => println!("  [wrote {}]", path.display()),
            Err(err) => eprintln!("[telemetry] cannot write summary: {err}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_with(dir: Option<&Path>) -> EvalArgs {
        EvalArgs {
            telemetry: dir.map(|d| d.to_string_lossy().into_owned()),
            ..EvalArgs::default()
        }
    }

    // One test drives both the disabled and enabled paths: the session
    // manipulates the process-global collector, so parallel test threads
    // must not share it.
    #[test]
    fn session_lifecycle() {
        let s = session(&args_with(None), "t_disabled");
        assert!(!crp_telemetry::enabled());
        drop(s);
        assert!(crp_telemetry::shutdown("t_disabled").is_none());

        let dir = std::env::temp_dir().join("crp-eval-telemetry-test");
        let _ = fs::remove_dir_all(&dir);
        let s = session(&args_with(Some(&dir)), "t_session");
        crp_telemetry::counter_add("test.calls", 3);
        crp_telemetry::event(5, "test.tick", &[]);
        drop(s);
        assert!(dir.join("t_session.jsonl").exists());
        let raw = fs::read_to_string(dir.join("t_session_summary.json")).expect("summary written");
        let value = serde_json::parse(&raw).expect("valid json");
        let summary = <TelemetrySummary as serde::Deserialize>::from_value(&value).expect("shape");
        assert_eq!(summary.experiment, "t_session");
        assert_eq!(summary.counter("test.calls"), Some(3));
        let _ = fs::remove_dir_all(&dir);
    }
}
