//! Experiment harness for the CRP reproduction.
//!
//! One binary per table/figure of the ICDCS 2008 evaluation, plus
//! ablations. The binaries share the kernels in [`closest`] and
//! [`clusterexp`], parse a common set of command-line flags ([`cli`]),
//! and emit both human-readable tables on stdout and CSV series under
//! `results/` ([`output`]).
//!
//! Run everything at paper scale with:
//!
//! ```text
//! cargo run --release -p crp-eval --bin run_all
//! ```
//!
//! Every binary accepts `--seed N` and scale flags so the experiments
//! can be re-run cheaply (`--clients 200 --candidates 60`) or at full
//! paper scale (the defaults).

/// Every binary linking this crate (the experiment bins, `run_all`, and
/// `crp-bench`'s `bench_all`) gets the counting global allocator, so
/// `--mem` attribution and per-iteration allocation pressure report
/// real numbers. Disarmed cost is two relaxed counter bumps per
/// allocation; the armed tax only applies while `--mem` is in effect.
#[global_allocator]
static ALLOC: crp_telemetry::profile::CountingAllocator = crp_telemetry::profile::CountingAllocator;

pub mod audit;
pub mod changedetect;
pub mod cli;
pub mod closest;
pub mod clusterexp;
pub mod output;
pub mod telemetry;

pub use cli::EvalArgs;
pub use closest::{run_closest, ClientOutcome, ClosestConfig};
pub use clusterexp::{run_clustering, ClusterExpConfig, ClusterExpData};
