//! Audit-output plumbing shared by the experiment binaries, `run_all`,
//! and the standalone `audit_report` binary.
//!
//! The division of labour mirrors `telemetry.rs`: the *judgement* logic
//! (what counts as drift, what counts as healthy) lives in `crp-audit`
//! where it is unit-testable without files; this module owns the file
//! layout. An audited run leaves three kinds of artifacts in the
//! `--audit` directory:
//!
//! * `<experiment>_drift.json` — a [`DriftTimeline`] from the
//!   post-campaign drift scan (written here by [`write_drift`]);
//! * `<experiment>_provenance.json` — the drained
//!   [`crp_core::explain::ExplainLog`] (written by the telemetry
//!   session on drop);
//! * `audit_report.json` in the *results* directory — the join of both
//!   with the telemetry summary and bench baselines, plus the three
//!   health verdicts ([`generate_report`]).
//!
//! Everything here runs after the simulation has finished; nothing in
//! this module can perturb experiment outputs.

use crate::closest::ClientOutcome;
use crp_audit::drift::DriftTimeline;
use crp_audit::report::{self, HealthVerdict, PerfOutcome};
use crp_core::explain::{ExplainLog, InversionRecord};
use serde::{Deserialize, Serialize, Value};
use std::fs;
use std::path::{Path, PathBuf};

/// Bound for the `drift-within-bounds` verdict: no window may see more
/// than this fraction of hosts drift past the L1 threshold. The churn
/// scenario intentionally remaps a slice of the population, so the
/// bound tolerates localized drift and only fails on a population-wide
/// upheaval.
pub const MAX_DRIFTED_FRACTION: f64 = 0.75;

/// Tolerated fraction of rank inversions without a structural
/// explanation for the `no-unexplained-tail-errors` verdict.
pub const TAIL_TOLERANCE: f64 = 0.05;

/// p50 regression tolerance for the `perf-within-baseline` verdict, in
/// percent — matches the `bench_check` default gate.
pub const PERF_TOLERANCE_PCT: f64 = 20.0;

/// Top-1 similarity below which a tail error counts as structurally
/// explained: the score itself says the pick was a guess.
pub const WEAK_SIGNAL_SCORE: f64 = 0.25;

/// Slack (ms) within which a Top-5 recommendation "recovers" a Top-1
/// tail error — the paper's within-7-ms band.
pub const TOP5_RECOVERY_MS: f64 = 7.0;

/// Rank at or past which a Top-1 pick counts as a tail-rank inversion
/// worth explaining (upper quarter of the candidate list, floor 2).
pub fn tail_rank(candidates: usize) -> usize {
    (candidates - candidates / 4).max(2)
}

/// Classifies one closest-node outcome, returning an
/// [`InversionRecord`] when the Top-1 pick landed in the tail of the
/// ground-truth ranking. An inversion is *explained* when the decision
/// carried its own warning: the client had no replica overlap with the
/// pick (`no_signal`), the similarity was below [`WEAK_SIGNAL_SCORE`]
/// (`weak_signal`), or the Top-5 set already recovered the error
/// (`top5_recovers`).
pub fn inversion_for(outcome: &ClientOutcome, candidates: usize) -> Option<InversionRecord> {
    if outcome.crp_top1_rank < tail_rank(candidates) {
        return None;
    }
    let (explained, reason) = if !outcome.crp_has_signal || outcome.crp_top1_score <= 0.0 {
        (true, "no_signal")
    } else if outcome.crp_top1_score < WEAK_SIGNAL_SCORE {
        (true, "weak_signal")
    } else if outcome.crp_top5_ms <= outcome.optimal_ms + TOP5_RECOVERY_MS {
        (true, "top5_recovers")
    } else {
        (false, "")
    };
    Some(InversionRecord {
        client: format!("{:?}", outcome.client),
        selected: format!("{:?}", outcome.crp_top1_selected),
        selected_rank: outcome.crp_top1_rank as u64,
        optimal: format!("{:?}", outcome.optimal_selected),
        top_score: outcome.crp_top1_score,
        explained,
        reason: reason.to_owned(),
    })
}

/// Records every tail-rank inversion in `outcomes` into the active
/// explain log and returns `(total, unexplained)`. Call only behind
/// [`crp_core::explain::enabled`].
pub fn record_inversions(outcomes: &[ClientOutcome], candidates: usize) -> (u64, u64) {
    let mut total = 0u64;
    let mut unexplained = 0u64;
    for outcome in outcomes {
        let Some(record) = inversion_for(outcome, candidates) else {
            continue;
        };
        total += 1;
        if !record.explained {
            unexplained += 1;
        }
        crp_core::explain::record_inversion(record);
    }
    (total, unexplained)
}

/// Writes `timeline` as JSON to `<dir>/<experiment>_drift.json` and
/// prints the path, mirroring the telemetry session's summary output.
/// Failures degrade to a warning: the drift file is an observer
/// artifact and must never abort an experiment.
pub fn write_drift(dir: &Path, experiment: &str, timeline: &DriftTimeline) {
    let write = || -> std::io::Result<PathBuf> {
        let json = serde_json::to_string(timeline)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{experiment}_drift.json"));
        fs::write(&path, json + "\n")?;
        Ok(path)
    };
    match write() {
        Ok(path) => println!("  [wrote {}]", path.display()),
        Err(err) => eprintln!("[audit] cannot write drift timeline: {err}"),
    }
}

/// Per-experiment provenance roll-up extracted from an
/// `<experiment>_provenance.json` file.
struct ProvenanceSummary {
    experiment: String,
    similarities: u64,
    rankings: u64,
    assignments: u64,
    inversions: u64,
    unexplained_inversions: u64,
    dropped: u64,
}

impl ProvenanceSummary {
    fn from_log(experiment: String, log: &ExplainLog) -> ProvenanceSummary {
        ProvenanceSummary {
            experiment,
            similarities: log.similarities.len() as u64,
            rankings: log.rankings.len() as u64,
            assignments: log.assignments.len() as u64,
            inversions: log.inversions.len() as u64,
            unexplained_inversions: log.inversions.iter().filter(|i| !i.explained).count() as u64,
            dropped: log.dropped(),
        }
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "experiment".to_owned(),
                Value::String(self.experiment.clone()),
            ),
            ("similarities".to_owned(), Value::UInt(self.similarities)),
            ("rankings".to_owned(), Value::UInt(self.rankings)),
            ("assignments".to_owned(), Value::UInt(self.assignments)),
            ("inversions".to_owned(), Value::UInt(self.inversions)),
            (
                "unexplained_inversions".to_owned(),
                Value::UInt(self.unexplained_inversions),
            ),
            ("dropped".to_owned(), Value::UInt(self.dropped)),
        ])
    }
}

/// Lists `audit_dir` entries with the given suffix as sorted
/// `(experiment, path)` pairs; the sort keeps the report byte-stable
/// regardless of directory iteration order.
fn artifacts(audit_dir: &Path, suffix: &str) -> Vec<(String, PathBuf)> {
    let Ok(entries) = fs::read_dir(audit_dir) else {
        return Vec::new();
    };
    let mut found: Vec<(String, PathBuf)> = entries
        .filter_map(|e| {
            let path = e.ok()?.path();
            let name = path.file_name()?.to_str()?;
            let experiment = name.strip_suffix(suffix)?;
            Some((experiment.to_owned(), path.clone()))
        })
        .collect();
    found.sort();
    found
}

/// Extracts `(name, p50_ns)` pairs from a bench report JSON value
/// (`BenchReport` schema, parsed structurally so crp-eval needs no
/// dependency on crp-bench, which depends on crp-eval).
fn bench_medians(value: &Value) -> Vec<(String, u64)> {
    let Ok(results) = value.field("results") else {
        return Vec::new();
    };
    results
        .as_array()
        .unwrap_or(&[])
        .iter()
        .filter_map(|r| {
            let name = match r.field("name").ok()? {
                Value::String(s) => s.clone(),
                _ => return None,
            };
            let p50 = match r.field("p50_ns").ok()? {
                Value::UInt(n) => *n,
                Value::Int(n) => u64::try_from(*n).ok()?,
                _ => return None,
            };
            Some((name, p50))
        })
        .collect()
}

/// Diffs the newest `BENCH_<label>.json` baseline in the current
/// directory against `<out_dir>/bench.json`, when both exist. Returns
/// `None` (verdict: skipped) otherwise.
fn perf_outcome(out_dir: &Path) -> Option<PerfOutcome> {
    let mut baselines: Vec<PathBuf> = fs::read_dir(".")
        .ok()?
        .filter_map(|e| {
            let path = e.ok()?.path();
            let name = path.file_name()?.to_str()?;
            (name.starts_with("BENCH_") && name.ends_with(".json")).then(|| path.clone())
        })
        .collect();
    baselines.sort();
    let baseline_path = baselines.pop()?;
    let current_path = out_dir.join("bench.json");
    let baseline = serde_json::parse(&fs::read_to_string(baseline_path).ok()?).ok()?;
    let current = serde_json::parse(&fs::read_to_string(current_path).ok()?).ok()?;
    let current_medians = bench_medians(&current);
    let mut checked = 0u64;
    let mut regressions = 0u64;
    for (name, base_p50) in bench_medians(&baseline) {
        let Some((_, cur_p50)) = current_medians.iter().find(|(n, _)| *n == name) else {
            continue;
        };
        checked += 1;
        if base_p50 == 0 {
            continue;
        }
        let limit = base_p50 as f64 * (1.0 + PERF_TOLERANCE_PCT / 100.0);
        if *cur_p50 as f64 > limit {
            regressions += 1;
        }
    }
    (checked > 0).then_some(PerfOutcome {
        checked,
        regressions,
        tolerance_pct: PERF_TOLERANCE_PCT,
    })
}

/// Pulls the `failed_experiments` list out of a parsed
/// `telemetry_summary.json`, tolerating older summaries without the
/// field.
fn failed_experiments(summary: &Value) -> Vec<String> {
    let Ok(list) = summary.field("failed_experiments") else {
        return Vec::new();
    };
    list.as_array()
        .unwrap_or(&[])
        .iter()
        .filter_map(|v| match v {
            Value::String(s) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

/// Joins every audit artifact in `audit_dir` with the telemetry summary
/// and bench baselines under `out_dir` into
/// `<out_dir>/audit_report.json`, and returns the health verdicts that
/// went into it (all three always present, failed checks first kept in
/// fixed order).
///
/// # Errors
///
/// Returns a message on malformed artifact files or an unwritable
/// output directory; *missing* inputs are not errors — each section
/// reports what it found and the corresponding verdict passes as
/// skipped.
pub fn generate_report(audit_dir: &Path, out_dir: &str) -> Result<Vec<HealthVerdict>, String> {
    let mut timelines: Vec<(String, DriftTimeline)> = Vec::new();
    let mut drift_values: Vec<(String, Value)> = Vec::new();
    for (experiment, path) in artifacts(audit_dir, "_drift.json") {
        let raw = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let value =
            serde_json::parse(&raw).map_err(|e| format!("{}: malformed: {e}", path.display()))?;
        let timeline = DriftTimeline::from_value(&value)
            .map_err(|e| format!("{}: unexpected shape: {e}", path.display()))?;
        timelines.push((experiment.clone(), timeline));
        drift_values.push((experiment, value));
    }

    let mut provenance: Vec<ProvenanceSummary> = Vec::new();
    for (experiment, path) in artifacts(audit_dir, "_provenance.json") {
        let raw = fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let value =
            serde_json::parse(&raw).map_err(|e| format!("{}: malformed: {e}", path.display()))?;
        let log = ExplainLog::from_value(&value)
            .map_err(|e| format!("{}: unexpected shape: {e}", path.display()))?;
        provenance.push(ProvenanceSummary::from_log(experiment, &log));
    }

    let out_path = Path::new(out_dir);
    let telemetry_summary = fs::read_to_string(out_path.join("telemetry_summary.json"))
        .ok()
        .and_then(|raw| serde_json::parse(&raw).ok());
    let failed = telemetry_summary
        .as_ref()
        .map(failed_experiments)
        .unwrap_or_default();

    let total_inversions: u64 = provenance.iter().map(|p| p.inversions).sum();
    let unexplained: u64 = provenance.iter().map(|p| p.unexplained_inversions).sum();

    let verdicts = vec![
        report::drift_within_bounds(&timelines, MAX_DRIFTED_FRACTION),
        report::no_unexplained_tail_errors(unexplained, total_inversions, TAIL_TOLERANCE),
        report::perf_within_baseline(perf_outcome(out_path)),
    ];
    let healthy = verdicts.iter().all(|v| v.passed) && failed.is_empty();

    let drift_events: u64 = timelines.iter().map(|(_, t)| t.drift_event_count()).sum();
    let document = Value::Object(vec![
        (
            "audit_dir".to_owned(),
            Value::String(audit_dir.display().to_string()),
        ),
        ("healthy".to_owned(), Value::Bool(healthy)),
        (
            "verdicts".to_owned(),
            Value::Array(verdicts.iter().map(Serialize::to_value).collect()),
        ),
        ("drift_event_count".to_owned(), Value::UInt(drift_events)),
        (
            "drift".to_owned(),
            Value::Object(drift_values.into_iter().collect()),
        ),
        (
            "provenance".to_owned(),
            Value::Array(provenance.iter().map(ProvenanceSummary::to_value).collect()),
        ),
        (
            "failed_experiments".to_owned(),
            Value::Array(failed.into_iter().map(Value::String).collect()),
        ),
    ]);
    let json = serde_json::to_string(&document).map_err(|e| e.to_string())?;
    fs::create_dir_all(out_path).map_err(|e| e.to_string())?;
    let report_path = out_path.join("audit_report.json");
    fs::write(&report_path, json + "\n").map_err(|e| e.to_string())?;
    println!("  [wrote {}]", report_path.display());
    Ok(verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_audit::drift::{DriftWindow, RemapEvent};

    fn timeline() -> DriftTimeline {
        DriftTimeline {
            interval_ms: 3_600_000,
            l1_threshold: 0.5,
            remap_fraction: 0.2,
            snapshots: 2,
            windows: vec![DriftWindow {
                from_ms: 0,
                to_ms: 3_600_000,
                hosts_compared: 4,
                mean_l1: 0.2,
                max_l1: 0.8,
                mean_cosine_distance: 0.1,
                drifted_hosts: 1,
                drifted_fraction: 0.25,
                strongest_changed: 1,
                strongest_changed_fraction: 0.25,
                cluster_distance: 0.0,
                clusters_from: 2,
                clusters_to: 2,
            }],
            remap_events: vec![RemapEvent {
                at_ms: 3_600_000,
                strongest_changed_fraction: 0.25,
                hosts_affected: 1,
            }],
        }
    }

    #[test]
    fn report_joins_drift_and_provenance() {
        let dir = std::env::temp_dir().join("crp-eval-audit-report-test");
        let _ = fs::remove_dir_all(&dir);
        let audit_dir = dir.join("audit");
        let results = dir.join("results");
        fs::create_dir_all(&audit_dir).expect("mkdir");

        write_drift(&audit_dir, "exp_a", &timeline());
        let mut log = ExplainLog::default();
        log.inversions.push(crp_core::explain::InversionRecord {
            client: "c1".to_owned(),
            selected: "r2".to_owned(),
            selected_rank: 4,
            optimal: "r0".to_owned(),
            top_score: 0.1,
            explained: true,
            reason: "no shared replicas".to_owned(),
        });
        let json = serde_json::to_string(&log).expect("serialize");
        fs::write(audit_dir.join("exp_a_provenance.json"), json).expect("write");

        let verdicts =
            generate_report(&audit_dir, results.to_str().expect("utf8")).expect("report");
        assert_eq!(verdicts.len(), 3);
        assert!(verdicts.iter().all(|v| v.passed), "{verdicts:?}");

        let raw = fs::read_to_string(results.join("audit_report.json")).expect("report written");
        let value = serde_json::parse(&raw).expect("valid json");
        assert_eq!(value.field("healthy"), Ok(&Value::Bool(true)));
        let drift = value.field("drift").expect("drift section");
        assert!(drift.field("exp_a").is_ok());
        assert!(
            matches!(
                value.field("drift_event_count"),
                Ok(Value::UInt(n)) if *n >= 1
            ) || matches!(
                value.field("drift_event_count"),
                Ok(Value::Int(n)) if *n >= 1
            )
        );
        let prov = value.field("provenance").expect("provenance section");
        let entries = prov.as_array().expect("array");
        assert_eq!(entries.len(), 1);
        assert!(
            matches!(
                entries[0].field("inversions"),
                Ok(Value::UInt(1) | Value::Int(1))
            ),
            "{entries:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_audit_dir_yields_skipped_but_passing_report() {
        let dir = std::env::temp_dir().join("crp-eval-audit-empty-test");
        let _ = fs::remove_dir_all(&dir);
        let audit_dir = dir.join("audit");
        let results = dir.join("results");
        fs::create_dir_all(&audit_dir).expect("mkdir");
        let verdicts =
            generate_report(&audit_dir, results.to_str().expect("utf8")).expect("report");
        assert!(verdicts.iter().all(|v| v.passed), "{verdicts:?}");
        assert!(verdicts
            .iter()
            .filter(|v| v.name != "perf-within-baseline")
            .all(|v| v.detail.starts_with("skipped")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bench_medians_parse_the_report_schema() {
        let raw = r#"{"label":"t","quick":false,"results":[
            {"name":"a/one","p50_ns":120},
            {"name":"b/two","p50_ns":7}
        ]}"#;
        let value = serde_json::parse(raw).expect("valid");
        let medians = bench_medians(&value);
        assert_eq!(
            medians,
            vec![("a/one".to_owned(), 120), ("b/two".to_owned(), 7)]
        );
        assert!(bench_medians(&Value::Null).is_empty());
    }

    /// Mints `HostId`s without a full scenario, via a scratch network.
    fn host_id(i: usize) -> crp_netsim::HostId {
        use std::sync::OnceLock;
        static IDS: OnceLock<Vec<crp_netsim::HostId>> = OnceLock::new();
        IDS.get_or_init(|| {
            let mut net = crp_netsim::NetworkBuilder::new(0xFEED)
                .tier1_count(2)
                .transit_per_region(1)
                .stubs_per_region(1)
                .build();
            (0..8)
                .map(|j| net.add_host(crp_netsim::Region::Europe, (1.0, 2.0), format!("t{j}")))
                .collect()
        })[i]
    }

    #[test]
    fn inversions_are_classified_by_structural_explanation() {
        assert_eq!(tail_rank(240), 180);
        assert_eq!(tail_rank(4), 3);
        assert_eq!(tail_rank(1), 2);
        let outcome = |rank: usize, score: f64, has_signal: bool, top5_ms: f64| ClientOutcome {
            client: host_id(0),
            optimal_ms: 10.0,
            optimal_selected: host_id(1),
            meridian_ms: 12.0,
            meridian_rank: 1,
            meridian_selected: host_id(2),
            crp_top1_ms: 80.0,
            crp_top1_rank: rank,
            crp_top1_selected: host_id(3),
            crp_top1_score: score,
            crp_top5_ms: top5_ms,
            crp_has_signal: has_signal,
        };
        // Body of the distribution: no inversion recorded.
        assert!(inversion_for(&outcome(10, 0.9, true, 80.0), 240).is_none());
        // Tail without signal: explained.
        let inv = inversion_for(&outcome(200, 0.0, false, 80.0), 240).expect("tail");
        assert!(inv.explained);
        assert_eq!(inv.reason, "no_signal");
        // Tail with weak signal: explained.
        let inv = inversion_for(&outcome(200, 0.1, true, 80.0), 240).expect("tail");
        assert_eq!(inv.reason, "weak_signal");
        // Tail where Top-5 recovers: explained.
        let inv = inversion_for(&outcome(200, 0.9, true, 12.0), 240).expect("tail");
        assert_eq!(inv.reason, "top5_recovers");
        // Confidently wrong: unexplained.
        let inv = inversion_for(&outcome(200, 0.9, true, 80.0), 240).expect("tail");
        assert!(!inv.explained);
        assert_eq!(inv.selected_rank, 200);
    }

    #[test]
    fn failed_experiments_tolerates_missing_field() {
        let with = serde_json::parse(r#"{"failed_experiments":["fig4","fig9"]}"#).expect("valid");
        assert_eq!(failed_experiments(&with), ["fig4", "fig9"]);
        let without = serde_json::parse(r#"{"experiments":[]}"#).expect("valid");
        assert!(failed_experiments(&without).is_empty());
    }
}
