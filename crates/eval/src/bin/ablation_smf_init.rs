//! Ablation: SMF's strongest-mappings-first center rule vs random
//! centers.
//!
//! The paper states it compared center-selection approaches and found
//! the strongest-mappings hybrid best; this ablation reruns Table I's
//! t=0.1 clustering with randomly drawn centers (same count) and
//! compares cluster quality.

use crp_core::{CenterStrategy, SmfConfig};
use crp_eval::output;
use crp_eval::{run_clustering, ClusterExpConfig, EvalArgs};
use crp_netsim::SimTime;

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "ablation_smf_init");
    let mut cfg = ClusterExpConfig::paper(&args);
    cfg.thresholds = vec![0.1];
    output::section(
        "ablation",
        "SMF center selection: strongest-mappings vs random",
    );
    output::kv(&[
        ("seed", args.seed.to_string()),
        ("nodes", cfg.nodes.to_string()),
    ]);

    let data = run_clustering(&cfg);
    let (_, smf) = &data.crp[0];
    let smf_summary = smf.summary();
    let smf_quality = data.quality(smf);

    // Random centers, same count as SMF produced, averaged over seeds.
    let end = SimTime::from_hours(cfg.observe_hours);
    let mut rows = vec![format!(
        "strongest,{},{},{:.3},{}",
        smf_summary.nodes_clustered,
        smf_summary.num_clusters,
        smf_quality.good_fraction().unwrap_or(0.0),
        smf_quality.good_in_diameter_bucket(0.0, 75.0),
    )];
    println!(
        "\n  {:<22} {:>10} {:>9} {:>10} {:>11}",
        "strategy", "#clustered", "#clusters", "good frac", "good <75ms"
    );
    println!(
        "  {:<22} {:>10} {:>9} {:>10.2} {:>11}",
        "strongest-mappings",
        smf_summary.nodes_clustered,
        smf_summary.num_clusters,
        smf_quality.good_fraction().unwrap_or(0.0),
        smf_quality.good_in_diameter_bucket(0.0, 75.0)
    );

    for seed in 0..3u64 {
        let random_cfg = SmfConfig {
            center_strategy: CenterStrategy::Random {
                count: smf.clusters().len().min(smf_summary.num_clusters * 2 + 4),
            },
            seed: cfg.seed ^ (seed + 1),
            ..SmfConfig::paper(0.1)
        };
        let clustering = data.service.cluster(&random_cfg, end);
        let summary = clustering.summary();
        let quality = data.quality(&clustering);
        println!(
            "  {:<22} {:>10} {:>9} {:>10.2} {:>11}",
            format!("random (seed {seed})"),
            summary.nodes_clustered,
            summary.num_clusters,
            quality.good_fraction().unwrap_or(0.0),
            quality.good_in_diameter_bucket(0.0, 75.0)
        );
        rows.push(format!(
            "random_{seed},{},{},{:.3},{}",
            summary.nodes_clustered,
            summary.num_clusters,
            quality.good_fraction().unwrap_or(0.0),
            quality.good_in_diameter_bucket(0.0, 75.0),
        ));
    }
    output::write_csv(
        &args.out_dir,
        "ablation_smf_init.csv",
        "strategy,nodes_clustered,num_clusters,good_fraction,good_clusters_75ms",
        &rows,
    );
}
