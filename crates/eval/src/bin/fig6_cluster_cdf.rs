//! Figure 6: CDF of intracluster distances, with the corresponding
//! intercluster distance for each cluster — CRP clustering at t = 0.1,
//! clusters with diameter < 75 ms.
//!
//! Paper shape: most clusters have diameter below ~40 ms, and nearly all
//! points fall in the "good" region (intercluster > intracluster).

use crp_eval::output;
use crp_eval::{run_clustering, ClusterExpConfig, EvalArgs};

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "fig6_cluster_cdf");
    let mut cfg = ClusterExpConfig::paper(&args);
    cfg.thresholds = vec![0.1];
    output::section(
        "Fig. 6",
        "CDF of intra- and inter-cluster distances (CRP t=0.1)",
    );
    output::kv(&[
        ("seed", args.seed.to_string()),
        ("nodes", cfg.nodes.to_string()),
    ]);

    let data = run_clustering(&cfg);
    let (_, clustering) = &data.crp[0];
    let report = data.quality(clustering);
    let mut records: Vec<_> = report.with_max_diameter(75.0).collect();
    records.sort_by(|a, b| a.intra_ms.total_cmp(&b.intra_ms));

    let n = records.len();
    println!("\n  {} clusters with diameter < 75 ms", n);
    let good = records.iter().filter(|r| r.is_good()).count();
    println!("  {good}/{n} are good (intercluster > intracluster)");
    let under_40 = records.iter().filter(|r| r.diameter_ms < 40.0).count();
    println!("  {under_40}/{n} have diameter < 40 ms (paper: most clusters)");

    let rows: Vec<String> = records
        .iter()
        .enumerate()
        .map(|(i, r)| {
            format!(
                "{:.4},{:.3},{:.3},{:.3},{}",
                (i + 1) as f64 / n as f64,
                r.intra_ms,
                r.inter_ms,
                r.diameter_ms,
                r.is_good()
            )
        })
        .collect();
    output::write_csv(
        &args.out_dir,
        "fig6_cluster_cdf.csv",
        "cdf,intra_ms,inter_ms,diameter_ms,good",
        &rows,
    );
}
