//! Ablation: does the cosine weighting matter, or only the replica
//! overlap?
//!
//! Reruns the Fig. 4 selection under three similarity metrics — cosine
//! (the paper's), Jaccard over replica sets, and histogram intersection —
//! over one shared observation campaign.

use crp_core::SimilarityMetric;
use crp_eval::closest::average_ranks;
use crp_eval::output;
use crp_eval::{run_closest, ClosestConfig, EvalArgs};
use crp_netsim::SimTime;

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "ablation_similarity_metric");
    let cfg = ClosestConfig {
        inject_faults: false,
        ..ClosestConfig::paper(&args)
    };
    output::section(
        "ablation",
        "similarity metric: cosine vs jaccard vs weighted overlap",
    );
    output::kv(&[("seed", args.seed.to_string())]);

    let run = run_closest(&cfg);
    let eval_times: Vec<SimTime> = (0..3)
        .map(|i| SimTime::from_hours(cfg.observe_hours - 8 + i * 4))
        .collect();

    let mut rows = Vec::new();
    for metric in SimilarityMetric::ALL {
        let service = run.service.clone().with_metric(metric);
        let ranks = average_ranks(&run.scenario, &service, &eval_times);
        let series: Vec<f64> = ranks.iter().map(|(_, r)| *r).collect();
        println!(
            "  {:<18} {}",
            metric.to_string(),
            output::summary_line(&series)
        );
        rows.push(format!(
            "{},{},{:.3},{:.3}",
            metric,
            series.len(),
            output::mean(&series).unwrap_or(f64::NAN),
            output::quantile(&series, 0.9).unwrap_or(f64::NAN),
        ));
    }
    output::write_csv(
        &args.out_dir,
        "ablation_similarity_metric.csv",
        "metric,clients,mean_rank,p90_rank",
        &rows,
    );
}
