//! Standalone audit-report generator:
//!
//! ```text
//! audit_report [--audit <dir>] [--out <dir>]
//! ```
//!
//! Joins the drift timelines and provenance logs an audited run left in
//! the `--audit` directory with `<out>/telemetry_summary.json` and the
//! bench baselines into `<out>/audit_report.json`, and prints the three
//! run-health verdicts. `run_all --audit` does the same join at the end
//! of a full campaign; this binary re-generates the report from
//! existing artifacts (e.g. after a single re-run experiment, or to
//! re-judge with a fresh bench baseline). Exits 1 when any verdict
//! fails, 2 on malformed artifacts.

use crp_eval::EvalArgs;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = EvalArgs::parse();
    let Some(audit_dir) = args.audit.as_deref() else {
        eprintln!("audit_report: --audit <dir> is required (where the run wrote its artifacts)");
        return ExitCode::from(2);
    };
    match crp_eval::audit::generate_report(Path::new(audit_dir), &args.out_dir) {
        Ok(verdicts) => {
            let mut all_passed = true;
            for v in &verdicts {
                let mark = if v.passed { "ok " } else { "FAIL" };
                println!("  {mark} {}: {}", v.name, v.detail);
                all_passed &= v.passed;
            }
            if all_passed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("audit_report: {err}");
            ExitCode::from(2)
        }
    }
}
