//! Text dashboard over a `--live` run's artifacts:
//!
//! ```text
//! live_report <dir> <experiment>
//! ```
//!
//! Reads `<dir>/<experiment>_timeseries.json`,
//! `<dir>/<experiment>_traces.json`, and
//! `<dir>/<experiment>_alerts.json` and renders the run the way an
//! on-call engineer would want to see it: per-metric aggregates with
//! tail quantiles, the alert rules with their firing history, and the
//! sampled causal traces with full span trees. Exits non-zero if any
//! artifact is missing or malformed.

use crp_telemetry::alert::AlertLog;
use crp_telemetry::timeseries::{TimeSeriesExport, WindowExport};
use crp_telemetry::trace::TraceLog;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [dir, experiment] = args.as_slice() else {
        eprintln!("usage: live_report <dir> <experiment>");
        return ExitCode::from(2);
    };
    match report(Path::new(dir), experiment) {
        Ok(text) => {
            // A closed stdout (e.g. piped into `head`) is not an error
            // for a report printer — swallow it instead of panicking.
            use std::io::Write as _;
            let _ = std::io::stdout().write_all(text.as_bytes());
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("live_report: {err}");
            ExitCode::FAILURE
        }
    }
}

fn load<T: serde::Deserialize>(dir: &Path, name: &str) -> Result<T, String> {
    let path = dir.join(name);
    let raw = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let value = serde_json::parse(&raw).map_err(|e| format!("{}: {e}", path.display()))?;
    T::from_value(&value).map_err(|e| format!("{}: unexpected shape: {e}", path.display()))
}

/// Quantile estimate from a window's bucket histogram, mirroring the
/// store's own rank walk (bucket upper bound, clamped to [min, max]).
fn quantile(w: &WindowExport, bounds: &[f64], q: f64) -> Option<f64> {
    if w.count == 0 {
        return None;
    }
    let rank = ((q * w.count as f64).ceil() as u64).clamp(1, w.count);
    let mut seen = 0u64;
    for (i, n) in w.buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            let upper = bounds.get(i).copied().unwrap_or(w.max);
            return Some(upper.clamp(w.min, w.max));
        }
    }
    Some(w.max)
}

fn hours(ms: u64) -> f64 {
    ms as f64 / 3_600_000.0
}

fn report(dir: &Path, experiment: &str) -> Result<String, String> {
    let ts: TimeSeriesExport = load(dir, &format!("{experiment}_timeseries.json"))?;
    let traces: TraceLog = load(dir, &format!("{experiment}_traces.json"))?;
    let alerts: AlertLog = load(dir, &format!("{experiment}_alerts.json"))?;

    let mut out = String::new();
    let mut push = |line: &str| {
        out.push_str(line);
        out.push('\n');
    };

    push(&format!("live report: {experiment}"));
    push("");
    push("== time series ==");
    push(&format!(
        "{:<34} {:>8} {:>9} {:>9} {:>9} {:>9}  windows",
        "metric", "count", "mean", "p50", "p99", "max"
    ));
    for series in &ts.series {
        let t = &series.total;
        let mean = if t.count > 0 {
            t.sum / t.count as f64
        } else {
            0.0
        };
        let p50 = quantile(t, &ts.bounds, 0.50).unwrap_or(0.0);
        let p99 = quantile(t, &ts.bounds, 0.99).unwrap_or(0.0);
        let widths: Vec<String> = series
            .tiers
            .iter()
            .map(|tier| format!("{}@{}s", tier.windows.len(), tier.window_ms / 1000))
            .collect();
        push(&format!(
            "{:<34} {:>8} {:>9.2} {:>9.2} {:>9.2} {:>9.2}  {}",
            series.name,
            t.count,
            mean,
            p50,
            p99,
            t.max,
            widths.join(" ")
        ));
    }
    if ts.late_dropped > 0 || ts.series_dropped > 0 {
        push(&format!(
            "dropped: {} late samples, {} past the series cap",
            ts.late_dropped, ts.series_dropped
        ));
    }

    push("");
    push("== alerts ==");
    for outcome in &alerts.rules {
        let fired = outcome
            .transitions
            .iter()
            .filter(|t| t.state == "firing")
            .count();
        push(&format!(
            "{:<24} {:>9}  breached {}/{} windows, fired {} time(s)",
            outcome.rule.name,
            outcome.final_state,
            outcome.breached_windows,
            outcome.evaluated_windows,
            fired
        ));
        for t in &outcome.transitions {
            push(&format!(
                "    {:>8.2}h  {:<8}  value {:.3}",
                hours(t.at_ms),
                t.state,
                t.value
            ));
        }
    }

    push("");
    push("== causal traces ==");
    push(&format!(
        "minted {}, sampled {} (1 in {}), dropped {}",
        traces.minted, traces.sampled, traces.sample_one_in, traces.dropped_traces
    ));
    // Exemplars connect the tail back to the traces: list each top-
    // bucket exemplar of the ingest-latency series that we can expand.
    if let Some(series) = ts.series("cdn.best_candidate_ms") {
        for ex in &series.total.exemplars {
            let reachable = traces.trace(&ex.trace).is_some();
            push(&format!(
                "exemplar bucket {} -> trace {} ({})",
                ex.bucket,
                ex.trace,
                if reachable { "sampled" } else { "unsampled" }
            ));
        }
    }
    // A handful of full span trees is enough to see the causal shape;
    // the rest stay in the JSON for targeted queries.
    const SHOWN: usize = 3;
    for tree in traces.traces.iter().take(SHOWN) {
        push(&format!(
            "trace {} (start {:.2}h, {} span(s){})",
            tree.id,
            hours(tree.start_ms),
            tree.spans.len(),
            if tree.dropped_spans > 0 {
                format!(", {} dropped", tree.dropped_spans)
            } else {
                String::new()
            }
        ));
        for span in &tree.spans {
            let times = if span.count > 1 {
                format!(" x{}", span.count)
            } else {
                String::new()
            };
            push(&format!(
                "    {:>8.2}h  {}{times}",
                hours(span.time_ms),
                span.name
            ));
        }
    }
    if traces.traces.len() > SHOWN {
        push(&format!(
            "... and {} more sampled trace(s) in the JSON",
            traces.traces.len() - SHOWN
        ));
    }
    Ok(out)
}
