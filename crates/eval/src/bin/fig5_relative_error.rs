//! Figure 5: relative error — latency to the recommended server minus
//! latency to the truly closest server, per client.
//!
//! Paper shape: most errors are small for both CRP and Meridian; a small
//! fraction of negative values appears because network dynamics move the
//! "optimal" during the experiment.

use crp_eval::output::{self, sorted_series};
use crp_eval::{run_closest, ClosestConfig, EvalArgs};
use crp_netsim::SimTime;

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "fig5_relative_error");
    let cfg = ClosestConfig::paper(&args);
    output::section("Fig. 5", "relative error of the recommendations");
    output::kv(&[
        ("seed", args.seed.to_string()),
        ("clients", cfg.clients.to_string()),
        ("candidates", cfg.candidates.to_string()),
    ]);

    let run = run_closest(&cfg);
    // Signed errors against an *instantaneous* optimum measured at a
    // slightly different time than the campaign mean, which is what lets
    // small negative values appear (network dynamics, as in the paper).
    let probe_t = SimTime::from_hours(cfg.observe_hours.saturating_sub(1));
    let net = run.scenario.network();
    let mut meridian_err = Vec::new();
    let mut top1_err = Vec::new();
    let mut top5_err = Vec::new();
    for o in &run.outcomes {
        let instant_best = run
            .scenario
            .candidates()
            .iter()
            .map(|&c| net.rtt(o.client, c, probe_t).millis())
            .fold(f64::INFINITY, f64::min);
        meridian_err.push(o.meridian_ms - instant_best);
        top1_err.push(o.crp_top1_ms - instant_best);
        top5_err.push(o.crp_top5_ms - instant_best);
    }

    println!("\n  signed relative error (ms), selected − optimal:");
    output::kv(&[
        ("meridian", output::summary_line(&meridian_err)),
        ("crp top-1", output::summary_line(&top1_err)),
        ("crp top-5", output::summary_line(&top5_err)),
    ]);
    let neg = |v: &[f64]| v.iter().filter(|x| **x < 0.0).count() as f64 / v.len() as f64 * 100.0;
    output::kv(&[(
        "negative values (dynamics)",
        format!(
            "meridian {:.1}%  top1 {:.1}%  top5 {:.1}%",
            neg(&meridian_err),
            neg(&top1_err),
            neg(&top5_err)
        ),
    )]);

    let sm = sorted_series(&meridian_err);
    let s1 = sorted_series(&top1_err);
    let s5 = sorted_series(&top5_err);
    let rows: Vec<String> = (0..sm.len())
        .map(|i| format!("{},{:.3},{:.3},{:.3}", i, sm[i], s1[i], s5[i]))
        .collect();
    output::write_csv(
        &args.out_dir,
        "fig5_relative_error.csv",
        "client_index,meridian_err_ms,crp_top1_err_ms,crp_top5_err_ms",
        &rows,
    );
    output::write_gnuplot(
        &args.out_dir,
        "fig5_relative_error",
        "Fig. 5: relative error of the recommendations",
        "relative error (ms)",
        "fig5_relative_error.csv",
        &[(2, "Meridian"), (3, "CRP Top-1"), (4, "CRP Top-5")],
    );
}
