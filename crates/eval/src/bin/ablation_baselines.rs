//! Ablation: CRP against the full related-work field.
//!
//! The paper compares CRP against Meridian (selection) and ASN
//! (clustering) only, noting that Meridian had already been shown to
//! beat coordinate systems. This ablation closes the loop inside the
//! reproduction: closest-node selection against Meridian, Vivaldi and
//! GNP; clustering against ASN and landmark binning — with each
//! system's probing bill on the same table.

use crp::{Scenario, ScenarioConfig};
use crp_baselines::asn_clustering;
use crp_baselines::{binning_clustering, BinningConfig, Gnp, GnpConfig, Vivaldi, VivaldiConfig};
use crp_core::{QualityReport, SimilarityMetric, WindowPolicy};
use crp_eval::output;
use crp_eval::EvalArgs;
use crp_meridian::{FaultPlan, MeridianConfig, MeridianOverlay};
use crp_netsim::{HostId, SimDuration, SimTime};

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "ablation_baselines");
    let scenario = Scenario::build(ScenarioConfig {
        seed: args.seed,
        candidate_servers: args.candidates.unwrap_or(120),
        clients: args.clients.unwrap_or(300),
        cdn_scale: args.scale.unwrap_or(1.0),
        ..ScenarioConfig::default()
    });
    output::section("ablation", "CRP vs the related-work field");
    output::kv(&[
        ("seed", args.seed.to_string()),
        ("clients", scenario.clients().len().to_string()),
        ("candidates", scenario.candidates().len().to_string()),
    ]);
    let net = scenario.network();
    let end = SimTime::from_hours(args.hours.unwrap_or(12));

    // ---------------- Selection task ---------------------------------
    let service = scenario.observe_all(
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );
    let overlay = MeridianOverlay::build(
        net,
        scenario.candidates(),
        MeridianConfig::default(),
        FaultPlan::none(),
    );
    let mut vivaldi = Vivaldi::new(
        &[scenario.candidates(), scenario.clients()].concat(),
        VivaldiConfig::default(),
    );
    vivaldi.run_rounds(net, 25, SimTime::ZERO);
    let mut gnp = Gnp::embed_landmarks(
        net,
        &scenario.candidates()[..12.min(scenario.candidates().len())],
        GnpConfig::default(),
        SimTime::ZERO,
    );
    for &h in scenario.candidates().iter().chain(scenario.clients()) {
        gnp.place_host(net, h, SimTime::ZERO);
    }

    let mut penalties: Vec<(&str, Vec<f64>)> = vec![
        ("crp top-1", Vec::new()),
        ("meridian", Vec::new()),
        ("vivaldi", Vec::new()),
        ("gnp", Vec::new()),
    ];
    for (i, &client) in scenario.clients().iter().enumerate() {
        let optimal = scenario
            .candidates()
            .iter()
            .map(|&c| net.rtt(client, c, end).millis())
            .fold(f64::INFINITY, f64::min);
        // CRP — only clients it can actually position (zero-overlap
        // clients would go to a fallback positioning source).
        if let Ok(ranking) = service.closest(&client, scenario.candidates().to_vec(), end) {
            if ranking.has_signal() {
                if let Some(&pick) = ranking.top() {
                    penalties[0]
                        .1
                        .push(net.rtt(client, pick, end).millis() - optimal);
                }
            }
        }
        // Meridian.
        let entry = scenario.candidates()[i % scenario.candidates().len()];
        let m = overlay.closest_node_query(net, entry, client, end);
        penalties[1]
            .1
            .push(net.rtt(client, m.selected, end).millis() - optimal);
        // Coordinate systems pick the candidate with the lowest
        // estimated RTT.
        let coord_pick = |est: &dyn Fn(HostId) -> Option<f64>| -> Option<HostId> {
            scenario
                .candidates()
                .iter()
                .filter_map(|&c| est(c).map(|e| (c, e)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(c, _)| c)
        };
        if let Some(pick) = coord_pick(&|c| vivaldi.estimate(client, c).map(|r| r.millis())) {
            penalties[2]
                .1
                .push(net.rtt(client, pick, end).millis() - optimal);
        }
        if let Some(pick) = coord_pick(&|c| gnp.estimate(client, c).map(|r| r.millis())) {
            penalties[3]
                .1
                .push(net.rtt(client, pick, end).millis() - optimal);
        }
    }

    println!("\n  closest-node selection penalty over optimal (ms), plus probing bill:");
    let bills = [
        0,
        overlay.probes_issued(),
        vivaldi.samples_taken(),
        gnp.probes_issued(),
    ];
    let mut rows = Vec::new();
    for ((name, series), bill) in penalties.iter().zip(bills) {
        println!(
            "    {:<10} {}  probes={}",
            name,
            output::summary_line(series),
            bill
        );
        rows.push(format!(
            "{},{:.3},{:.3},{}",
            name.replace(' ', "_"),
            output::mean(series).unwrap_or(f64::NAN),
            output::quantile(series, 0.9).unwrap_or(f64::NAN),
            bill
        ));
    }

    // ---------------- Clustering task --------------------------------
    // Cluster the client cohort only (the service also tracked the
    // candidates for the selection task above).
    let client_maps: Vec<(HostId, crp_core::RatioMap<crp_cdn::ReplicaId>)> = scenario
        .clients()
        .iter()
        .filter_map(|&c| service.ratio_map(&c, end).ok().map(|m| (c, m)))
        .collect();
    let smf = crp_core::Clustering::smf(&client_maps, &crp_core::SmfConfig::paper(0.1));
    let asn = asn_clustering(net, scenario.clients());
    let binning = binning_clustering(
        net,
        scenario.clients(),
        &scenario.candidates()[..8.min(scenario.candidates().len())],
        &BinningConfig::default(),
        end,
    );
    println!(
        "\n  clustering ({} nodes): good clusters <75 ms diameter:",
        scenario.clients().len()
    );
    for (name, clustering) in [("crp", &smf), ("asn", &asn), ("binning", &binning)] {
        let report = QualityReport::evaluate(clustering, |a, b| net.rtt(*a, *b, end).millis());
        let good = report.good_in_diameter_bucket(0.0, 75.0);
        let s = clustering.summary();
        println!(
            "    {:<8} {} clusters, {} nodes clustered, {} good",
            name, s.num_clusters, s.nodes_clustered, good
        );
        rows.push(format!(
            "cluster_{name},{},{},{}",
            s.num_clusters, s.nodes_clustered, good
        ));
    }

    output::write_csv(
        &args.out_dir,
        "ablation_baselines.csv",
        "system,mean_penalty_or_clusters,p90_or_clustered,probes_or_good",
        &rows,
    );
}
