//! §VI ablation: commensalism — what load does CRP put on the CDN?
//!
//! The paper argues a CRP client at a ~100-minute probing interval
//! "will generate an additional load significantly lower than what is
//! expected from an ordinary web client", and that passive monitoring
//! removes even that. This ablation measures all three deployment modes
//! against the CDN's own query counters.

use crp::{CdnProbe, PassiveMonitor, Scenario, ScenarioConfig};
use crp_core::ObservationSource;
use crp_eval::output;
use crp_eval::EvalArgs;
use crp_netsim::{noise, SimDuration, SimTime};

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "ablation_overhead");
    let scenario = Scenario::build(ScenarioConfig {
        seed: args.seed,
        candidate_servers: 0,
        clients: args.clients.unwrap_or(50),
        cdn_scale: args.scale.unwrap_or(0.5),
        ..ScenarioConfig::default()
    });
    output::section(
        "§VI",
        "commensalism: CRP load on the CDN per client per day",
    );
    output::kv(&[("seed", args.seed.to_string())]);

    let day = SimTime::from_hours(24);
    let host = scenario.clients()[0];
    let names = scenario.names().to_vec();

    // Mode 1: active probing at the paper's recommended 100-minute
    // interval.
    let mut probe_100 = CdnProbe::new(scenario.cdn(), host, names.clone());
    for t in SimTime::ZERO.iter_until(day, SimDuration::from_mins(100)) {
        let _ = probe_100.observe(t);
    }
    // Mode 2: active probing at the evaluation's 10-minute interval.
    let mut probe_10 = CdnProbe::new(scenario.cdn(), host, names.clone());
    for t in SimTime::ZERO.iter_until(day, SimDuration::from_mins(10)) {
        let _ = probe_10.observe(t);
    }
    // Mode 3: passive monitoring of a typical browsing day (bursts of
    // page loads; only cache misses reach the CDN).
    let mut passive = PassiveMonitor::new(scenario.cdn(), host, names.clone());
    let mut browsing_lookups = 0u64;
    for burst in 0..20u64 {
        let start = SimTime::from_mins(30 + noise::mix(&[args.seed, burst]) % 1_380);
        passive.browse_session(start, SimDuration::from_mins(5), 8);
        browsing_lookups += 8;
    }
    // An ordinary web client, for the paper's comparison point: every
    // page load of a CDN-accelerated site re-resolves after the 20 s TTL
    // lapses — i.e. roughly one CDN query per page load.
    let web_client_queries = browsing_lookups;

    println!();
    output::kv(&[
        (
            "active probing, 100-min interval",
            format!("{} CDN queries/day", probe_100.queries_issued()),
        ),
        (
            "active probing, 10-min interval",
            format!("{} CDN queries/day", probe_10.queries_issued()),
        ),
        (
            "passive monitoring",
            format!(
                "{} added queries/day ({} observations harvested)",
                passive.added_queries(),
                passive.observations()
            ),
        ),
        (
            "ordinary web client (browsing)",
            format!("~{web_client_queries} CDN queries/day"),
        ),
    ]);
    println!(
        "\n  a 100-min CRP client costs {:.1}x an ordinary web user; per-node load is O(1) in system size",
        probe_100.queries_issued() as f64 / web_client_queries.max(1) as f64
    );

    // Where the answers came from: the load follows the fleet's
    // capacity, not any single replica.
    println!("\n  answers served per region:");
    for (region, count) in scenario.cdn().answers_by_region() {
        if count > 0 {
            println!("    {region:<14} {count}");
        }
    }

    output::write_csv(
        &args.out_dir,
        "ablation_overhead.csv",
        "mode,cdn_queries_per_day",
        &[
            format!("active_100min,{}", probe_100.queries_issued()),
            format!("active_10min,{}", probe_10.queries_issued()),
            format!("passive,{}", passive.added_queries()),
            format!("web_client,{web_client_queries}"),
        ],
    );
}
