//! Prints the synthetic world behind the experiments — AS counts, host
//! placement, RTT quantiles — and optionally exports the full structure
//! as JSON for external analysis:
//!
//! ```text
//! cargo run --release -p crp-eval --bin describe_world -- --seed 42
//! ```

use crp::{Scenario, ScenarioConfig};
use crp_eval::output;
use crp_eval::EvalArgs;
use crp_netsim::SimTime;

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "describe_world");
    let scenario = Scenario::build(ScenarioConfig {
        seed: args.seed,
        candidate_servers: args.candidates.unwrap_or(240),
        clients: args.clients.unwrap_or(1_000),
        cdn_scale: args.scale.unwrap_or(1.0),
        ..ScenarioConfig::default()
    });
    output::section("world", "the synthetic Internet behind the experiments");
    output::kv(&[("seed", args.seed.to_string())]);

    let net = scenario.network();
    let summary = net.summarize(5_000, SimTime::from_hours(1));
    println!("\n{summary}");
    println!(
        "\nCDN: {} replicas across {} customer names",
        scenario.cdn().replicas().len(),
        scenario.cdn().customers().len()
    );

    // One worked example of an explainable RTT.
    let a = scenario.clients()[0];
    let b = scenario.clients()[1];
    println!(
        "\nexample pair {a} <-> {b}: {}",
        net.explain_rtt(a, b, SimTime::from_hours(1))
    );

    // Full JSON export.
    let description = net.describe();
    let json = serde_json::to_string(&description).expect("world serializes");
    let dir = std::path::Path::new(&args.out_dir);
    std::fs::create_dir_all(dir).expect("create results directory");
    let path = dir.join(format!("world_seed{}.json", args.seed));
    std::fs::write(&path, json).expect("write world description");
    println!(
        "\n[wrote {} — {} ASes, {} links, {} hosts]",
        path.display(),
        description.ases.len(),
        description.link_count(),
        description.hosts.len()
    );
}
