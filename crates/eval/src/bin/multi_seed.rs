//! Multi-seed validation: are the headline results stable across worlds?
//!
//! Reruns the two headline experiments (Fig. 4 selection, Table I / Fig. 7
//! clustering) over several independent seeds at reduced scale and
//! reports mean ± sample standard deviation of the key metrics — the
//! check a reviewer would ask for of any simulation study.
//!
//! ```text
//! cargo run --release -p crp-eval --bin multi_seed -- --seed 42
//! ```

use crp_eval::output;
use crp_eval::{run_closest, run_clustering, ClosestConfig, ClusterExpConfig, EvalArgs};

const SEEDS: u64 = 5;

fn mean_std(v: &[f64]) -> (f64, f64) {
    let n = v.len() as f64;
    let mean = v.iter().sum::<f64>() / n;
    if v.len() < 2 {
        return (mean, 0.0);
    }
    let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "multi_seed");
    output::section("multi-seed", format!("{SEEDS} independent worlds").as_str());

    let mut crp_better = Vec::new();
    let mut within7 = Vec::new();
    let mut crp_penalty = Vec::new();
    let mut meridian_penalty = Vec::new();
    let mut clustered_frac = Vec::new();
    let mut asn_frac = Vec::new();
    let mut good_ratio = Vec::new();

    for s in 0..SEEDS {
        let seed = args.seed.wrapping_add(s * 1_000);
        // Selection at reduced scale.
        let run = run_closest(&ClosestConfig {
            seed,
            candidates: args.candidates.unwrap_or(80),
            clients: args.clients.unwrap_or(250),
            observe_hours: args.hours.unwrap_or(12),
            ..ClosestConfig::paper(&args)
        });
        let n = run.outcomes.len() as f64;
        crp_better.push(
            run.outcomes
                .iter()
                .filter(|o| o.crp_top5_ms < o.meridian_ms)
                .count() as f64
                / n
                * 100.0,
        );
        within7.push(
            run.outcomes
                .iter()
                .filter(|o| (o.crp_top5_ms - o.meridian_ms).abs() < 7.0)
                .count() as f64
                / n
                * 100.0,
        );
        crp_penalty.push(
            run.outcomes
                .iter()
                .map(|o| o.crp_top1_ms - o.optimal_ms)
                .sum::<f64>()
                / n,
        );
        meridian_penalty.push(
            run.outcomes
                .iter()
                .map(|o| o.meridian_ms - o.optimal_ms)
                .sum::<f64>()
                / n,
        );

        // Clustering at the paper's node count.
        let data = run_clustering(&ClusterExpConfig {
            seed,
            observe_hours: args.hours.unwrap_or(12),
            thresholds: vec![0.1],
            ..ClusterExpConfig::paper(&args)
        });
        let (_, crp) = &data.crp[0];
        clustered_frac.push(crp.summary().fraction_clustered() * 100.0);
        asn_frac.push(data.asn.summary().fraction_clustered() * 100.0);
        let crp_good = data.quality(crp).good_in_diameter_bucket(0.0, 75.0) as f64;
        let asn_good = data.quality(&data.asn).good_in_diameter_bucket(0.0, 75.0) as f64;
        good_ratio.push(crp_good / asn_good.max(1.0));
        println!("  seed {seed}: done");
    }

    println!("\n  metric (mean ± std over {SEEDS} seeds; paper reference in parens):");
    let mut rows = Vec::new();
    for (label, series, reference) in [
        ("CRP Top-5 better than Meridian (%)", &crp_better, ">25"),
        ("CRP Top-5 within 7 ms of Meridian (%)", &within7, "~65"),
        ("CRP Top-1 penalty (ms)", &crp_penalty, "small"),
        ("Meridian penalty (ms)", &meridian_penalty, "small"),
        ("CRP nodes clustered at t=0.1 (%)", &clustered_frac, "72"),
        ("ASN nodes clustered (%)", &asn_frac, "23"),
        ("good clusters, CRP / ASN", &good_ratio, ">1.5"),
    ] {
        let (m, sd) = mean_std(series);
        println!("    {label:<42} {m:7.1} ± {sd:4.1}   ({reference})");
        rows.push(format!("{},{m:.3},{sd:.3}", label.replace(',', ";")));
    }
    output::write_csv(&args.out_dir, "multi_seed.csv", "metric,mean,std", &rows);
}
