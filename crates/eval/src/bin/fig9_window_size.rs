//! Figure 9: average rank of CRP's Top-1 recommendation under probe
//! window sizes of all / 30 / 10 / 5 probes, at a fixed 10-minute probe
//! interval.
//!
//! Paper shape: 10 probes suffice (≈100 minutes of bootstrap); 30 adds a
//! little; 5 is too few; "all probes" is better for about two thirds of
//! clients but *worse* for the rest, because stale history misrepresents
//! current network conditions.

use crp::{Scenario, ScenarioConfig};
use crp_core::{SimilarityMetric, WindowPolicy};
use crp_eval::closest::average_ranks;
use crp_eval::output::{self, sorted_series};
use crp_eval::EvalArgs;
use crp_netsim::HostId;
use crp_netsim::{SimDuration, SimTime};
use std::collections::BTreeMap;

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "fig9_window_size");
    let hours = args.hours.unwrap_or(48);
    let scenario = Scenario::build(ScenarioConfig {
        seed: args.seed,
        candidate_servers: args.candidates.unwrap_or(240),
        clients: args.clients.unwrap_or(1_000),
        cdn_scale: args.scale.unwrap_or(1.0),
        ..ScenarioConfig::default()
    });
    output::section(
        "Fig. 9",
        "average rank vs probe window size (10-min interval)",
    );
    output::kv(&[
        ("seed", args.seed.to_string()),
        ("clients", scenario.clients().len().to_string()),
        ("candidates", scenario.candidates().len().to_string()),
        ("campaign", format!("{hours}h @ 10min")),
    ]);

    let end = SimTime::from_hours(hours);
    // One observation campaign, reinterpreted under each window.
    let base = scenario.observe_all(
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::All,
        SimilarityMetric::Cosine,
    );
    let eval_times: Vec<SimTime> = (0..4)
        .map(|i| SimTime::from_hours(hours - 12 + i * 4))
        .collect();

    let windows = [
        WindowPolicy::All,
        WindowPolicy::LastProbes(30),
        WindowPolicy::LastProbes(10),
        WindowPolicy::LastProbes(5),
    ];
    let mut csv_columns: Vec<Vec<f64>> = Vec::new();
    let mut per_client: Vec<BTreeMap<HostId, f64>> = Vec::new();
    for w in windows {
        let service = base.clone().with_window(w);
        let ranks = average_ranks(&scenario, &service, &eval_times);
        let series: Vec<f64> = ranks.iter().map(|(_, r)| *r).collect();
        println!(
            "  window {:<12} {}",
            w.label(),
            output::summary_line(&series)
        );
        per_client.push(ranks.into_iter().collect());
        csv_columns.push(sorted_series(&series));
    }

    // The paper's head-to-head: "all probes" vs the 10-probe window.
    let all_ranks = &per_client[0];
    let ten_ranks = &per_client[2];
    let mut all_better = 0usize;
    let mut ten_better = 0usize;
    for (client, r_all) in all_ranks {
        if let Some(r_ten) = ten_ranks.get(client) {
            if r_all < r_ten {
                all_better += 1;
            } else if r_ten < r_all {
                ten_better += 1;
            }
        }
    }
    println!(
        "\n  all-probes better for {all_better} clients, 10-probe window better for {ten_better} \
         (paper: all-probes wins ~2/3, loses the rest to stale history)"
    );

    let max_len = csv_columns.iter().map(Vec::len).max().unwrap_or(0);
    let rows: Vec<String> = (0..max_len)
        .map(|i| {
            let cells: Vec<String> = csv_columns
                .iter()
                .map(|col| col.get(i).map(|v| format!("{v:.3}")).unwrap_or_default())
                .collect();
            format!("{},{}", i, cells.join(","))
        })
        .collect();
    output::write_csv(
        &args.out_dir,
        "fig9_window_size.csv",
        "client_index,rank_all,rank_30,rank_10,rank_5",
        &rows,
    );
    output::write_gnuplot(
        &args.out_dir,
        "fig9_window_size",
        "Fig. 9: average rank vs probe window size",
        "average rank",
        "fig9_window_size.csv",
        &[
            (2, "all probes"),
            (3, "30 probes"),
            (4, "10 probes"),
            (5, "5 probes"),
        ],
    );
}
