//! Table I: summary statistics for clusters formed by CRP at
//! t ∈ {0.01, 0.1, 0.5} and by ASN-based clustering.
//!
//! Paper shape: lower thresholds cluster more nodes into larger
//! clusters; CRP clusters ~3× more nodes than ASN and finds over twice
//! as many clusters, because it can group nearby nodes across AS
//! boundaries.

use crp_eval::output;
use crp_eval::{run_clustering, ClusterExpConfig, EvalArgs};

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "table1_cluster_summary");
    let cfg = ClusterExpConfig::paper(&args);
    output::section("Table I", "cluster summary: CRP thresholds vs ASN");
    output::kv(&[
        ("seed", args.seed.to_string()),
        ("nodes", cfg.nodes.to_string()),
        ("campaign", format!("{}h @ 10min", cfg.observe_hours)),
    ]);

    let data = run_clustering(&cfg);

    println!();
    println!(
        "  {:<14} {:>10} {:>8} {:>10}   {:<22}",
        "technique", "#clustered", "%", "#clusters", "[mean, median, max] size"
    );
    let mut rows = Vec::new();
    for (t, clustering) in &data.crp {
        let s = clustering.summary();
        println!(
            "  {:<14} {:>10} {:>7.0}% {:>10}   [{:.2}, {}, {}]",
            format!("CRP (t={t})"),
            s.nodes_clustered,
            s.fraction_clustered() * 100.0,
            s.num_clusters,
            s.mean_size,
            s.median_size,
            s.max_size
        );
        rows.push(format!(
            "crp_t{},{},{:.3},{},{:.3},{},{}",
            t,
            s.nodes_clustered,
            s.fraction_clustered(),
            s.num_clusters,
            s.mean_size,
            s.median_size,
            s.max_size
        ));
    }
    let s = data.asn.summary();
    println!(
        "  {:<14} {:>10} {:>7.0}% {:>10}   [{:.2}, {}, {}]",
        "ASN",
        s.nodes_clustered,
        s.fraction_clustered() * 100.0,
        s.num_clusters,
        s.mean_size,
        s.median_size,
        s.max_size
    );
    rows.push(format!(
        "asn,{},{:.3},{},{:.3},{},{}",
        s.nodes_clustered,
        s.fraction_clustered(),
        s.num_clusters,
        s.mean_size,
        s.median_size,
        s.max_size
    ));

    output::write_csv(
        &args.out_dir,
        "table1_cluster_summary.csv",
        "technique,nodes_clustered,fraction,num_clusters,mean_size,median_size,max_size",
        &rows,
    );
}
