//! §V-A error forensics: who causes the bad tails of Figs. 4–5?
//!
//! The paper removed servers with relative RTT > 80 ms for *both*
//! approaches and found less than 20% overlap — the two systems fail on
//! different clients, for different reasons: Meridian errors trace to
//! deployment pathologies (bootstrap self-recommendation, never-joined
//! nodes, site isolation), CRP errors to clients in regions the CDN
//! serves poorly.

use crp_eval::output;
use crp_eval::{run_closest, ClosestConfig, EvalArgs};
use crp_netsim::SimTime;
use std::collections::BTreeSet;

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "forensics_tail_errors");
    let cfg = ClosestConfig::paper(&args);
    output::section(
        "§V-A",
        "forensics of tail errors (threshold: 80 ms over optimal)",
    );
    output::kv(&[("seed", args.seed.to_string())]);

    let run = run_closest(&cfg);
    // The paper's threshold is 80 ms; the simulated CDN covers King-like
    // clients well enough that CRP rarely exceeds it, so the analysis is
    // reported at a second, tighter threshold too.
    for bad_threshold in [80.0, 25.0] {
        println!("\n-- bad-client threshold: {bad_threshold} ms over optimal --");

        let crp_bad: BTreeSet<_> = run
            .outcomes
            .iter()
            .filter(|o| o.crp_top5_ms - o.optimal_ms > bad_threshold)
            .map(|o| o.client)
            .collect();
        let meridian_bad: BTreeSet<_> = run
            .outcomes
            .iter()
            .filter(|o| o.meridian_ms - o.optimal_ms > bad_threshold)
            .map(|o| o.client)
            .collect();
        let both: BTreeSet<_> = crp_bad.intersection(&meridian_bad).collect();
        let union = crp_bad.union(&meridian_bad).count();
        let overlap_pct = if union == 0 {
            0.0
        } else {
            both.len() as f64 / union as f64 * 100.0
        };
        println!();
        output::kv(&[
            ("CRP bad clients", crp_bad.len().to_string()),
            ("Meridian bad clients", meridian_bad.len().to_string()),
            (
                "overlap",
                format!(
                    "{} of {} ({overlap_pct:.0}%, paper: <20%)",
                    both.len(),
                    union
                ),
            ),
        ]);

        let _ = (&crp_bad, &meridian_bad);
    }
    let bad_threshold = 25.0;
    let crp_bad: BTreeSet<_> = run
        .outcomes
        .iter()
        .filter(|o| o.crp_top5_ms - o.optimal_ms > bad_threshold)
        .map(|o| o.client)
        .collect();
    let meridian_bad: BTreeSet<_> = run
        .outcomes
        .iter()
        .filter(|o| o.meridian_ms - o.optimal_ms > bad_threshold)
        .map(|o| o.client)
        .collect();

    // CRP attribution: poorly covered clients see scattered replica sets
    // (the New Zealand server in the paper saw 27 distinct replicas).
    let eval_t = run.eval_time;
    let mut crp_bad_scatter = Vec::new();
    let mut crp_ok_scatter = Vec::new();
    for o in &run.outcomes {
        if let Ok(map) = run.service.ratio_map(&o.client, eval_t) {
            let scatter = map.len() as f64;
            if crp_bad.contains(&o.client) {
                crp_bad_scatter.push(scatter);
            } else {
                crp_ok_scatter.push(scatter);
            }
        }
    }
    println!("\n  CRP attribution — distinct replicas in the client's ratio map:");
    output::kv(&[
        ("bad clients", output::summary_line(&crp_bad_scatter)),
        ("good clients", output::summary_line(&crp_ok_scatter)),
    ]);

    // Meridian attribution: how many bad answers came from a faulty
    // node recommending itself or its twin (hops == 0 means the entry
    // answered without forwarding; compare selected node against the
    // entry-fault signature by re-running the query).
    let net = run.scenario.network();
    let mut fault_shaped = 0usize;
    for o in &run.outcomes {
        if !meridian_bad.contains(&o.client) {
            continue;
        }
        // A fault-shaped answer: the recommendation is far from the
        // client but the overlay had strictly closer candidates.
        let best = run
            .scenario
            .candidates()
            .iter()
            .map(|&c| net.rtt(o.client, c, SimTime::from_hours(1)).millis())
            .fold(f64::INFINITY, f64::min);
        if o.meridian_ms > best + bad_threshold {
            fault_shaped += 1;
        }
    }
    println!("\n  Meridian attribution:");
    output::kv(&[
        (
            "bad answers with a much closer candidate available",
            format!("{fault_shaped}/{}", meridian_bad.len()),
        ),
        (
            "overlay probes issued",
            run.overlay.probes_issued().to_string(),
        ),
    ]);

    let rows: Vec<String> = run
        .outcomes
        .iter()
        .map(|o| {
            format!(
                "{},{:.3},{:.3},{:.3},{},{}",
                o.client.index(),
                o.optimal_ms,
                o.crp_top5_ms,
                o.meridian_ms,
                crp_bad.contains(&o.client),
                meridian_bad.contains(&o.client)
            )
        })
        .collect();
    output::write_csv(
        &args.out_dir,
        "forensics_tail_errors.csv",
        "client,optimal_ms,crp_top5_ms,meridian_ms,crp_bad,meridian_bad",
        &rows,
    );
}
