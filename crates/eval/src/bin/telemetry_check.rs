//! CI validator for a telemetry run:
//!
//! ```text
//! telemetry_check <dir> <experiment>
//! ```
//!
//! Checks that `<dir>/<experiment>.jsonl` is well-formed JSONL and that
//! `<dir>/<experiment>_summary.json` deserializes into a
//! [`TelemetrySummary`] whose event counters match the stream: each
//! `event.<name>` counter must equal the number of `kind == "event"`
//! lines carrying that name, and `events_recorded` must equal the total.
//! Exits non-zero with a diagnostic on any mismatch.

use crp_telemetry::TelemetrySummary;
use serde::Deserialize as _;
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [dir, experiment] = args.as_slice() else {
        eprintln!("usage: telemetry_check <dir> <experiment>");
        return ExitCode::from(2);
    };
    match check(Path::new(dir), experiment) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("telemetry_check: {err}");
            ExitCode::FAILURE
        }
    }
}

fn str_field(value: &serde::Value, name: &str) -> Result<String, serde::Error> {
    match value.field(name)? {
        serde::Value::String(s) => Ok(s.clone()),
        other => Err(serde::Error::custom(format!(
            "field `{name}` is not a string: {other:?}"
        ))),
    }
}

fn check(dir: &Path, experiment: &str) -> Result<String, String> {
    let jsonl_path = dir.join(format!("{experiment}.jsonl"));
    let raw = std::fs::read_to_string(&jsonl_path)
        .map_err(|e| format!("{}: {e}", jsonl_path.display()))?;

    let total_records = raw.lines().count();
    let mut event_lines = 0u64;
    let mut span_pairs = 0u64;
    let mut per_name: BTreeMap<String, u64> = BTreeMap::new();
    for (i, line) in raw.lines().enumerate() {
        let value = serde_json::parse(line)
            .map_err(|e| format!("{}:{}: malformed JSONL: {e}", jsonl_path.display(), i + 1))?;
        let kind = str_field(&value, "kind")
            .map_err(|e| format!("{}:{}: {e}", jsonl_path.display(), i + 1))?;
        match kind.as_str() {
            "event" => {
                event_lines += 1;
                let name = str_field(&value, "name")
                    .map_err(|e| format!("{}:{}: {e}", jsonl_path.display(), i + 1))?;
                *per_name.entry(name).or_insert(0) += 1;
            }
            "span_end" => span_pairs += 1,
            "span_start" => {}
            other => {
                return Err(format!(
                    "{}:{}: unknown record kind `{other}`",
                    jsonl_path.display(),
                    i + 1
                ))
            }
        }
    }

    let summary_path = dir.join(format!("{experiment}_summary.json"));
    let raw = std::fs::read_to_string(&summary_path)
        .map_err(|e| format!("{}: {e}", summary_path.display()))?;
    let value = serde_json::parse(&raw).map_err(|e| format!("{}: {e}", summary_path.display()))?;
    let summary = TelemetrySummary::from_value(&value)
        .map_err(|e| format!("{}: not a TelemetrySummary: {e}", summary_path.display()))?;

    if summary.experiment != experiment {
        return Err(format!(
            "summary names experiment `{}`, expected `{experiment}`",
            summary.experiment
        ));
    }
    if summary.events_recorded != event_lines {
        return Err(format!(
            "summary says {} events, stream has {event_lines}",
            summary.events_recorded
        ));
    }
    if summary.spans_recorded != span_pairs {
        return Err(format!(
            "summary says {} spans, stream has {span_pairs} span_end records",
            summary.spans_recorded
        ));
    }
    for (name, n) in &per_name {
        let counter = format!("event.{name}");
        if summary.counter(&counter) != Some(*n) {
            return Err(format!(
                "counter `{counter}` is {:?}, stream has {n} `{name}` events",
                summary.counter(&counter)
            ));
        }
    }
    Ok(format!(
        "{experiment}: {total_records} JSONL records ok ({event_lines} events across {} names, \
         {span_pairs} spans); summary consistent with {} counters",
        per_name.len(),
        summary.counters.len()
    ))
}
