//! CI validator for a telemetry run:
//!
//! ```text
//! telemetry_check <dir> <experiment>
//! ```
//!
//! Checks that `<dir>/<experiment>.jsonl` is well-formed JSONL and that
//! `<dir>/<experiment>_summary.json` deserializes into a
//! [`TelemetrySummary`] whose event counters match the stream: each
//! `event.<name>` counter must equal the number of `kind == "event"`
//! lines carrying that name, and `events_recorded` must equal the total.
//! Also surfaces sink backpressure: a non-zero `sink_dropped` in the
//! summary prints a warning, and a count above `--max-dropped N`
//! (default 100) fails the check — a lossy stream can no longer back
//! the counter cross-validation it exists for.
//!
//! When the run also produced a live time-series store
//! (`<dir>/<experiment>_timeseries.json`), the check reads its health
//! counters: points dropped for arriving late and series rejected at
//! capacity. Both should be zero in a SimTime-keyed run — timestamps
//! come from the simulation clock, so a late point means an
//! instrumentation bug, not scheduling jitter. A total above
//! `--max-late N` (default 0) fails the check.
//! Exits non-zero with a diagnostic on any mismatch.

use crp_telemetry::timeseries::TimeSeriesExport;
use crp_telemetry::TelemetrySummary;
use serde::Deserialize as _;
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

/// Sink drops tolerated before the check fails outright.
const DEFAULT_MAX_DROPPED: u64 = 100;

/// Time-series late/capacity drops tolerated: none — SimTime stamps are
/// deterministic, so any late point is an instrumentation bug.
const DEFAULT_MAX_LATE: u64 = 0;

/// Extracts `--<name> N` from `args` (consuming both tokens), falling
/// back to `default`. `Err` when the value is missing or non-numeric.
fn flag_value(args: &mut Vec<String>, name: &str, default: u64) -> Result<u64, String> {
    let Some(pos) = args.iter().position(|a| a == name) else {
        return Ok(default);
    };
    let Some(value) = args.get(pos + 1).and_then(|v| v.parse().ok()) else {
        return Err(format!("{name} requires an integer value"));
    };
    args.drain(pos..=pos + 1);
    Ok(value)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let max_dropped = match flag_value(&mut args, "--max-dropped", DEFAULT_MAX_DROPPED) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::from(2);
        }
    };
    let max_late = match flag_value(&mut args, "--max-late", DEFAULT_MAX_LATE) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::from(2);
        }
    };
    let [dir, experiment] = args.as_slice() else {
        eprintln!("usage: telemetry_check <dir> <experiment> [--max-dropped N] [--max-late N]");
        return ExitCode::from(2);
    };
    match check(Path::new(dir), experiment, max_dropped, max_late) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("telemetry_check: {err}");
            ExitCode::FAILURE
        }
    }
}

fn str_field(value: &serde::Value, name: &str) -> Result<String, serde::Error> {
    match value.field(name)? {
        serde::Value::String(s) => Ok(s.clone()),
        other => Err(serde::Error::custom(format!(
            "field `{name}` is not a string: {other:?}"
        ))),
    }
}

fn check(dir: &Path, experiment: &str, max_dropped: u64, max_late: u64) -> Result<String, String> {
    let jsonl_path = dir.join(format!("{experiment}.jsonl"));
    let raw = std::fs::read_to_string(&jsonl_path)
        .map_err(|e| format!("{}: {e}", jsonl_path.display()))?;

    let total_records = raw.lines().count();
    let mut event_lines = 0u64;
    let mut span_pairs = 0u64;
    let mut per_name: BTreeMap<String, u64> = BTreeMap::new();
    for (i, line) in raw.lines().enumerate() {
        let value = serde_json::parse(line)
            .map_err(|e| format!("{}:{}: malformed JSONL: {e}", jsonl_path.display(), i + 1))?;
        let kind = str_field(&value, "kind")
            .map_err(|e| format!("{}:{}: {e}", jsonl_path.display(), i + 1))?;
        match kind.as_str() {
            "event" => {
                event_lines += 1;
                let name = str_field(&value, "name")
                    .map_err(|e| format!("{}:{}: {e}", jsonl_path.display(), i + 1))?;
                *per_name.entry(name).or_insert(0) += 1;
            }
            "span_end" => span_pairs += 1,
            "span_start" => {}
            other => {
                return Err(format!(
                    "{}:{}: unknown record kind `{other}`",
                    jsonl_path.display(),
                    i + 1
                ))
            }
        }
    }

    let summary_path = dir.join(format!("{experiment}_summary.json"));
    let raw = std::fs::read_to_string(&summary_path)
        .map_err(|e| format!("{}: {e}", summary_path.display()))?;
    let value = serde_json::parse(&raw).map_err(|e| format!("{}: {e}", summary_path.display()))?;
    let summary = TelemetrySummary::from_value(&value)
        .map_err(|e| format!("{}: not a TelemetrySummary: {e}", summary_path.display()))?;

    if summary.experiment != experiment {
        return Err(format!(
            "summary names experiment `{}`, expected `{experiment}`",
            summary.experiment
        ));
    }
    if summary.sink_dropped > max_dropped {
        return Err(format!(
            "sink dropped {} record(s), above the --max-dropped limit of {max_dropped}; \
             the stream is too lossy to validate",
            summary.sink_dropped
        ));
    }
    // Counters are recorded in-process and never dropped, so the stream
    // can only ever run short of them — and must match exactly when the
    // sink reports no drops.
    let lossy = summary.sink_dropped > 0;
    let consistent = |stream: u64, counted: u64| {
        if lossy {
            stream <= counted
        } else {
            stream == counted
        }
    };
    if !consistent(event_lines, summary.events_recorded) {
        return Err(format!(
            "summary says {} events, stream has {event_lines}",
            summary.events_recorded
        ));
    }
    if !consistent(span_pairs, summary.spans_recorded) {
        return Err(format!(
            "summary says {} spans, stream has {span_pairs} span_end records",
            summary.spans_recorded
        ));
    }
    for (name, n) in &per_name {
        let counter = format!("event.{name}");
        if !consistent(*n, summary.counter(&counter).unwrap_or(0)) {
            return Err(format!(
                "counter `{counter}` is {:?}, stream has {n} `{name}` events",
                summary.counter(&counter)
            ));
        }
    }
    let mut report = format!(
        "{experiment}: {total_records} JSONL records ok ({event_lines} events across {} names, \
         {span_pairs} spans); summary consistent with {} counters",
        per_name.len(),
        summary.counters.len()
    );
    if summary.sink_dropped > 0 {
        report.push_str(&format!(
            "\nwarning: sink dropped {} record(s) (limit {max_dropped}); \
             counters remain authoritative but the stream is incomplete",
            summary.sink_dropped
        ));
    }

    // Time-series health, when the run produced a live store alongside
    // the stream: SimTime stamps are deterministic, so late points and
    // capacity rejections both mean lost observability data.
    let ts_path = dir.join(format!("{experiment}_timeseries.json"));
    if let Ok(raw) = std::fs::read_to_string(&ts_path) {
        let value = serde_json::parse(&raw)
            .map_err(|e| format!("{}: malformed timeseries export: {e}", ts_path.display()))?;
        let export = TimeSeriesExport::from_value(&value)
            .map_err(|e| format!("{}: not a TimeSeriesExport: {e}", ts_path.display()))?;
        let lost = export.late_dropped + export.series_dropped;
        if lost > max_late {
            return Err(format!(
                "time-series store lost {} point(s) ({} late, {} series at capacity), \
                 above the --max-late limit of {max_late}",
                lost, export.late_dropped, export.series_dropped
            ));
        }
        report.push_str(&format!(
            "\ntimeseries health ok: {} late drop(s), {} series rejected (limit {max_late})",
            export.late_dropped, export.series_dropped
        ));
    }
    Ok(report)
}
