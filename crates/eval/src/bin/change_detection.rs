//! Change detection: scripted CDN infrastructure events vs the online
//! detector.
//!
//! Builds a scenario with the standard scripted event suite (regional
//! pool flip, datacenter outage + recovery, load-balancer policy
//! change, flash crowd, staggered footprint expansion), observes the
//! client population through the full horizon, runs the
//! `crp_audit::detect` scan over the recorded history, and matches
//! every detection against the ground-truth event log. Emits detection
//! latency, precision/recall, false-alarm rate, and per-event ratio-map
//! re-convergence times to `results/change_detection.json` (plus a CSV
//! table), and the raw detection report into the `--audit` directory.

use crp::{Scenario, ScenarioConfig};
use crp_audit::detect::{DetectConfig, DetectionReport};
use crp_cdn::EventScript;
use crp_core::{SimilarityMetric, WindowPolicy};
use crp_eval::changedetect::{self, MatchConfig};
use crp_eval::output;
use crp_eval::EvalArgs;
use crp_netsim::{HostId, SimDuration, SimTime};
use serde::{Serialize, Value};
use std::fs;
use std::path::Path;

fn main() {
    let args = EvalArgs::parse();
    let telemetry = crp_eval::telemetry::session(&args, "change_detection");
    let horizon = SimTime::from_hours(args.hours.unwrap_or(24));
    let script = EventScript::standard_suite(horizon);
    let scripted = script.events().len();
    let scenario = Scenario::build(ScenarioConfig {
        seed: args.seed,
        candidate_servers: 0,
        clients: args.clients.unwrap_or(160),
        cdn_scale: args.scale.unwrap_or(1.0),
        broad_clients: true,
        events: Some(script),
        ..ScenarioConfig::default()
    });
    output::section("change_detection", "scripted events vs online detector");
    output::kv(&[
        ("seed", args.seed.to_string()),
        ("clients", scenario.clients().len().to_string()),
        ("horizon (h)", (horizon.as_millis() / 3_600_000).to_string()),
        ("scripted events", scripted.to_string()),
        (
            "ground-truth records",
            scenario.event_log().len().to_string(),
        ),
    ]);

    let service = scenario.observe_hosts(
        scenario.clients(),
        SimTime::ZERO,
        horizon,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(12),
        SimilarityMetric::Cosine,
    );

    // Scope every client by its region slug; the detector localizes
    // changes to these labels (plus a synthetic "global").
    let hosts: Vec<(HostId, String)> = scenario
        .clients()
        .iter()
        .map(|&h| (h, scenario.network().host(h).region().slug().to_owned()))
        .collect();
    let detect_cfg = DetectConfig::new(SimTime::from_hours(1), horizon, SimDuration::from_mins(30));
    let report = crp_audit::detect::scan(&service, &hosts, &detect_cfg);
    let eval = changedetect::evaluate(scenario.event_log(), &report, &MatchConfig::default());

    println!("\n  per-event outcomes:");
    println!(
        "    {:<28} {:<14} {:>8} {:>10} {:>12} {:>12}",
        "class", "region", "onset(h)", "detected", "latency(min)", "reconv(min)"
    );
    let mut rows = Vec::new();
    for e in &eval.events {
        let latency_min = if e.detection_latency_ms >= 0 {
            (e.detection_latency_ms / 60_000).to_string()
        } else {
            "-".to_owned()
        };
        let reconv_min = if e.reconvergence_ms >= 0 {
            ((e.reconvergence_ms - e.until_ms as i64).max(0) / 60_000).to_string()
        } else {
            "-".to_owned()
        };
        println!(
            "    {:<28} {:<14} {:>8.1} {:>10} {:>12} {:>12}",
            e.class,
            e.region,
            e.at_ms as f64 / 3_600_000.0,
            if e.detected { "yes" } else { "NO" },
            latency_min,
            reconv_min,
        );
        rows.push(format!(
            "{},{},{},{},{},{},{}",
            e.class,
            e.region,
            e.at_ms,
            e.detected,
            e.detection_latency_ms,
            e.detected_class,
            e.reconvergence_ms
        ));
    }

    println!("\n  detection quality:");
    output::kv(&[
        ("detections", eval.detections_total.to_string()),
        ("matched", eval.detections_matched.to_string()),
        ("precision", format!("{:.3}", eval.precision)),
        ("recall", format!("{:.3}", eval.recall)),
        (
            "false alarms / day",
            format!("{:.3}", eval.false_alarm_rate_per_day),
        ),
        (
            "mean latency (min)",
            format!("{:.1}", eval.mean_detection_latency_ms / 60_000.0),
        ),
        ("all events detected", eval.all_events_detected.to_string()),
    ]);
    if !eval.false_alarms.is_empty() {
        println!("\n  false alarms:");
        for fa in &eval.false_alarms {
            println!(
                "    {:.1}h {} @ {} (magnitude {:.3})",
                fa.detected_ms as f64 / 3_600_000.0,
                fa.class,
                fa.scope,
                fa.magnitude
            );
        }
    }

    output::write_csv(
        &args.out_dir,
        "change_detection.csv",
        "class,region,at_ms,detected,latency_ms,detected_class,reconvergence_ms",
        &rows,
    );
    write_json(&args.out_dir, &args, &eval, &report);

    // Audit artifact: the raw window stream and change list, for
    // post-hoc inspection next to the drift timelines.
    if let Some(audit_dir) = telemetry.audit_dir() {
        write_report(audit_dir, &report);
    }
}

/// Writes the headline artifact the CI smoke gate greps:
/// `results/change_detection.json`.
fn write_json(
    out_dir: &str,
    args: &EvalArgs,
    eval: &changedetect::DetectionEval,
    report: &DetectionReport,
) {
    let document = Value::Object(vec![
        ("seed".to_owned(), Value::UInt(args.seed)),
        ("interval_ms".to_owned(), Value::UInt(report.interval_ms)),
        (
            "windows".to_owned(),
            Value::UInt(report.windows.len() as u64),
        ),
        ("eval".to_owned(), eval.to_value()),
        (
            "all_events_detected".to_owned(),
            Value::Bool(eval.all_events_detected),
        ),
        (
            "false_alarm_count".to_owned(),
            Value::UInt(eval.false_alarms.len() as u64),
        ),
    ]);
    let write = || -> std::io::Result<()> {
        fs::create_dir_all(out_dir)?;
        let json = serde_json::to_string(&document)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        fs::write(
            Path::new(out_dir).join("change_detection.json"),
            json + "\n",
        )
    };
    match write() {
        Ok(()) => println!("  [wrote {}/change_detection.json]", out_dir),
        Err(err) => eprintln!("[change_detection] cannot write results: {err}"),
    }
}

/// Writes the full detection report into the audit directory.
fn write_report(dir: &Path, report: &DetectionReport) {
    let write = || -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let json = serde_json::to_string(report)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        fs::write(dir.join("change_detection_detect.json"), json + "\n")
    };
    match write() {
        Ok(()) => println!("  [wrote {}/change_detection_detect.json]", dir.display()),
        Err(err) => eprintln!("[change_detection] cannot write detection report: {err}"),
    }
}
