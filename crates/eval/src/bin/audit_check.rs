//! CI validator for an audit report:
//!
//! ```text
//! audit_check <audit_report.json>
//! ```
//!
//! Checks that the report parses, that every section has the expected
//! shape (all three health verdicts present, each drift entry a valid
//! [`DriftTimeline`], provenance entries carrying their counters), and
//! that the `healthy` flag is consistent with the verdicts and the
//! failed-experiment list. Exits 0 on a consistent healthy report, 1 on
//! an unhealthy-but-well-formed one (a failed verdict must fail CI),
//! and 2 on usage errors or a malformed report.

use crp_audit::drift::DriftTimeline;
use crp_audit::report::HealthVerdict;
use serde::{Deserialize as _, Value};
use std::path::Path;
use std::process::ExitCode;

const EXPECTED_VERDICTS: &[&str] = &[
    "drift-within-bounds",
    "no-unexplained-tail-errors",
    "perf-within-baseline",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: audit_check <audit_report.json>");
        return ExitCode::from(2);
    };
    match check(Path::new(path)) {
        Ok((report, healthy)) => {
            println!("{report}");
            if healthy {
                ExitCode::SUCCESS
            } else {
                eprintln!("audit_check: report is well-formed but unhealthy");
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("audit_check: {err}");
            ExitCode::from(2)
        }
    }
}

/// Validates the report at `path`; returns a one-line summary and the
/// report's health flag.
fn check(path: &Path) -> Result<(String, bool), String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let value = serde_json::parse(&raw).map_err(|e| format!("{}: {e}", path.display()))?;

    let healthy = match value.field("healthy") {
        Ok(Value::Bool(b)) => *b,
        other => return Err(format!("`healthy` is not a boolean: {other:?}")),
    };

    let verdicts_value = value
        .field("verdicts")
        .map_err(|e| format!("missing verdicts section: {e}"))?;
    let verdicts: Vec<HealthVerdict> = verdicts_value
        .as_array()
        .ok_or("`verdicts` is not an array")?
        .iter()
        .map(HealthVerdict::from_value)
        .collect::<Result<_, _>>()
        .map_err(|e| format!("malformed verdict: {e}"))?;
    for expected in EXPECTED_VERDICTS {
        if !verdicts.iter().any(|v| v.name == *expected) {
            return Err(format!("verdict `{expected}` is missing"));
        }
    }
    for v in &verdicts {
        if v.detail.is_empty() {
            return Err(format!("verdict `{}` has an empty detail line", v.name));
        }
    }

    let drift = value
        .field("drift")
        .map_err(|e| format!("missing drift section: {e}"))?;
    let drift_entries = drift.as_object().ok_or("`drift` is not an object")?;
    for (experiment, timeline) in drift_entries {
        DriftTimeline::from_value(timeline)
            .map_err(|e| format!("drift timeline `{experiment}` is malformed: {e}"))?;
    }
    let drift_events = match value.field("drift_event_count") {
        Ok(Value::UInt(n)) => *n,
        Ok(Value::Int(n)) if *n >= 0 => *n as u64,
        other => return Err(format!("`drift_event_count` is not a count: {other:?}")),
    };

    let provenance = value
        .field("provenance")
        .map_err(|e| format!("missing provenance section: {e}"))?;
    let provenance_entries = provenance
        .as_array()
        .ok_or("`provenance` is not an array")?;
    for entry in provenance_entries {
        for field in [
            "experiment",
            "similarities",
            "rankings",
            "assignments",
            "inversions",
            "unexplained_inversions",
            "dropped",
        ] {
            entry
                .field(field)
                .map_err(|e| format!("provenance entry: {e}"))?;
        }
    }

    let failed = value
        .field("failed_experiments")
        .map_err(|e| format!("missing failed_experiments: {e}"))?
        .as_array()
        .ok_or("`failed_experiments` is not an array")?
        .len();

    let verdicts_passed = verdicts.iter().all(|v| v.passed);
    if healthy != (verdicts_passed && failed == 0) {
        return Err(format!(
            "`healthy` = {healthy} contradicts verdicts (all passed: {verdicts_passed}) \
             and failed_experiments ({failed})"
        ));
    }

    Ok((
        format!(
            "{}: {} verdict(s) consistent, {} drift timeline(s) with {} drift event(s), \
             {} provenance entr(ies), {} failed experiment(s)",
            path.display(),
            verdicts.len(),
            drift_entries.len(),
            drift_events,
            provenance_entries.len(),
            failed
        ),
        healthy,
    ))
}
