//! Runs every experiment binary in sequence with shared flags —
//! regenerates all tables and figures in one command:
//!
//! ```text
//! cargo run --release -p crp-eval --bin run_all [-- --seed 42 ...]
//! ```
//!
//! Flags are forwarded verbatim to every experiment, so `--telemetry
//! <dir>` makes each binary dump its own JSONL stream and summary there
//! (and `--profile <dir>` its wall-clock scope tree); run_all then folds
//! the per-experiment summaries into `<out>/telemetry_summary.json`,
//! together with per-experiment wall-clock durations, peak RSS
//! (best-effort, Linux `/proc`), a `combined` cross-experiment
//! roll-up, and the list of failed experiments. With `--audit <dir>`
//! each binary additionally writes drift timelines and decision
//! provenance there, and run_all joins them into
//! `<out>/audit_report.json` with run-health verdicts. With `--live
//! <dir>` each binary writes its SimTime time-series store, sampled
//! causal traces, and SLO alert log there, and run_all joins the alert
//! logs into `<out>/alerts.json` with a cross-run firing count; the
//! summary also gains a `timeseries_health` section surfacing each
//! store's late-point and series-capacity drop counters. With `--mem
//! <dir>` each binary arms allocation attribution and writes its
//! per-domain snapshot there, and run_all joins the snapshots into
//! `<out>/mem_report.json` with per-experiment attributed fractions.
//!
//! All durations come from [`Stopwatch`] — the same monotonic clock the
//! profiler uses — so coarse and fine-grained attribution share a basis.

use crp_eval::EvalArgs;
use crp_telemetry::profile::{peak_rss_bytes_for, Stopwatch};
use crp_telemetry::TelemetrySummary;
use serde::{Deserialize, Serialize, Value};
use std::path::Path;
use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig4_closest_latency",
    "fig5_relative_error",
    "table1_cluster_summary",
    "fig6_cluster_cdf",
    "fig7_good_clusters",
    "fig8_probe_interval",
    "fig9_window_size",
    "forensics_tail_errors",
    "ablation_name_filter",
    "ablation_similarity_metric",
    "ablation_smf_init",
    "ablation_detour",
    "ablation_overhead",
    "ablation_passive_bootstrap",
    "ablation_cluster_stability",
    "ablation_baselines",
    "change_detection",
];

/// Wall-clock accounting for one completed experiment.
struct ExperimentRun {
    name: &'static str,
    seconds: f64,
    peak_rss_bytes: Option<u64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("current executable path");
    let dir = me.parent().expect("executable has a parent directory");
    let mut failures = Vec::new();
    let mut runs: Vec<ExperimentRun> = Vec::new();
    for exp in EXPERIMENTS {
        let path = dir.join(exp);
        if !path.exists() {
            eprintln!("[run_all] {exp}: missing binary {path:?} (build the workspace first)");
            failures.push(*exp);
            continue;
        }
        eprintln!("[run_all] running {exp} ...");
        match run_experiment(&path, &args) {
            Ok((seconds, peak_rss_bytes)) => runs.push(ExperimentRun {
                name: exp,
                seconds,
                peak_rss_bytes,
            }),
            Err(err) => {
                eprintln!("[run_all] {exp} FAILED: {err}");
                failures.push(*exp);
            }
        }
    }

    eprintln!("[run_all] wall-clock durations:");
    for run in &runs {
        let rss = match run.peak_rss_bytes {
            Some(bytes) => format!("{:6.1} MiB peak", bytes as f64 / (1024.0 * 1024.0)),
            None => "rss n/a".to_owned(),
        };
        eprintln!("[run_all]   {:<28} {:7.2}s  {rss}", run.name, run.seconds);
    }

    // Fold the per-experiment telemetry summaries plus the wall-clock
    // attribution into one file.
    if let Ok(parsed) = EvalArgs::try_from_args(args.clone()) {
        if parsed.telemetry.is_some() || !runs.is_empty() {
            let tdir = parsed.telemetry.as_deref().map(Path::new);
            let ldir = parsed.live.as_deref().map(Path::new);
            match aggregate_summaries(tdir, ldir, &parsed.out_dir, &runs, &failures) {
                Ok(n) => eprintln!("[run_all] aggregated {n} telemetry summaries"),
                Err(err) => {
                    eprintln!("[run_all] telemetry aggregation failed: {err}");
                    failures.push("telemetry_aggregation");
                }
            }
        }
        // Join the per-experiment audit artifacts into the run-health
        // report (after the summary, which the report folds in).
        if let Some(audit_dir) = parsed.audit.as_deref() {
            match crp_eval::audit::generate_report(Path::new(audit_dir), &parsed.out_dir) {
                Ok(verdicts) => {
                    for v in &verdicts {
                        let mark = if v.passed { "ok " } else { "FAIL" };
                        eprintln!("[run_all] audit {mark} {}: {}", v.name, v.detail);
                    }
                }
                Err(err) => {
                    eprintln!("[run_all] audit report failed: {err}");
                    failures.push("audit_report");
                }
            }
        }
        // Join the per-experiment alert logs so one file answers "did
        // any SLO fire anywhere in the run".
        if let Some(live_dir) = parsed.live.as_deref() {
            match aggregate_alerts(Path::new(live_dir), &parsed.out_dir) {
                Ok((n, firing)) => {
                    eprintln!("[run_all] aggregated {n} alert logs, {firing} rule(s) firing");
                }
                Err(err) => {
                    eprintln!("[run_all] alert aggregation failed: {err}");
                    failures.push("alert_aggregation");
                }
            }
        }
        // Join the per-experiment attribution snapshots so one file
        // answers "which subsystem allocated what" across the run.
        if let Some(mem_dir) = parsed.mem.as_deref() {
            match aggregate_mem(Path::new(mem_dir), &parsed.out_dir) {
                Ok(n) => eprintln!("[run_all] aggregated {n} memory snapshots"),
                Err(err) => {
                    eprintln!("[run_all] memory aggregation failed: {err}");
                    failures.push("mem_aggregation");
                }
            }
        }
    }

    if failures.is_empty() {
        eprintln!("[run_all] all {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("[run_all] failures: {failures:?}");
        std::process::exit(1);
    }
}

/// Collects every `<live_dir>/<exp>_alerts.json` into
/// `<out_dir>/alerts.json`: an object with `experiments` (per-experiment
/// alert logs, each wrapped with its name and the rules it left firing)
/// and `firing_total`, the cross-run count of still-firing rules.
/// Returns `(logs_folded, firing_total)`.
fn aggregate_alerts(live_dir: &Path, out_dir: &str) -> Result<(usize, usize), String> {
    let mut entries: Vec<Value> = Vec::new();
    let mut firing_total = 0usize;
    for exp in EXPERIMENTS {
        let path = live_dir.join(format!("{exp}_alerts.json"));
        let Ok(raw) = std::fs::read_to_string(&path) else {
            continue; // experiment failed or ran without --live
        };
        let value = serde_json::parse(&raw)
            .map_err(|e| format!("{}: malformed alert log: {e}", path.display()))?;
        let log = crp_telemetry::alert::AlertLog::from_value(&value)
            .map_err(|e| format!("{}: unexpected shape: {e}", path.display()))?;
        let firing = log.firing();
        firing_total += firing.len();
        entries.push(Value::Object(vec![
            ("experiment".to_owned(), Value::String((*exp).to_owned())),
            (
                "firing".to_owned(),
                Value::Array(
                    firing
                        .iter()
                        .map(|name| Value::String((*name).to_owned()))
                        .collect(),
                ),
            ),
            ("alerts".to_owned(), value),
        ]));
    }
    let count = entries.len();
    let document = Value::Object(vec![
        ("experiments".to_owned(), Value::Array(entries)),
        ("firing_total".to_owned(), Value::UInt(firing_total as u64)),
    ]);
    let json = serde_json::to_string(&document).map_err(|e| e.to_string())?;
    std::fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;
    let out_path = Path::new(out_dir).join("alerts.json");
    std::fs::write(&out_path, json + "\n").map_err(|e| e.to_string())?;
    eprintln!("[run_all] wrote {}", out_path.display());
    Ok((count, firing_total))
}

/// Collects every `<mem_dir>/<exp>_mem.json` into
/// `<out_dir>/mem_report.json`: an object with `experiments` (each
/// snapshot wrapped with its name, total allocation count, and
/// attributed fraction) and `attributed_fraction_min`, the worst
/// per-experiment fraction — the single number a dashboard gates on.
/// Returns how many snapshots were folded in.
fn aggregate_mem(mem_dir: &Path, out_dir: &str) -> Result<usize, String> {
    let mut entries: Vec<Value> = Vec::new();
    let mut min_fraction: Option<f64> = None;
    for exp in EXPERIMENTS {
        let path = mem_dir.join(format!("{exp}_mem.json"));
        let Ok(raw) = std::fs::read_to_string(&path) else {
            continue; // experiment failed or ran without --mem
        };
        let value = serde_json::parse(&raw)
            .map_err(|e| format!("{}: malformed mem snapshot: {e}", path.display()))?;
        let snap = crp_telemetry::MemSnapshot::from_value(&value)
            .map_err(|e| format!("{}: unexpected shape: {e}", path.display()))?;
        let fraction = snap.attributed_fraction();
        min_fraction = Some(min_fraction.map_or(fraction, |m: f64| m.min(fraction)));
        entries.push(Value::Object(vec![
            ("experiment".to_owned(), Value::String((*exp).to_owned())),
            ("total_allocs".to_owned(), Value::UInt(snap.total_allocs())),
            ("total_bytes".to_owned(), Value::UInt(snap.total_bytes())),
            ("attributed_fraction".to_owned(), Value::Float(fraction)),
            ("mem".to_owned(), value),
        ]));
    }
    let count = entries.len();
    let document = Value::Object(vec![
        ("experiments".to_owned(), Value::Array(entries)),
        (
            "attributed_fraction_min".to_owned(),
            min_fraction.map_or(Value::Null, Value::Float),
        ),
    ]);
    let json = serde_json::to_string(&document).map_err(|e| e.to_string())?;
    std::fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;
    let out_path = Path::new(out_dir).join("mem_report.json");
    std::fs::write(&out_path, json + "\n").map_err(|e| e.to_string())?;
    eprintln!("[run_all] wrote {}", out_path.display());
    Ok(count)
}

/// Spawns one experiment and supervises it to completion, sampling its
/// peak RSS from `/proc/<pid>/status` while it runs (best-effort: the
/// sample loop can miss a short-lived peak, and non-Linux platforms
/// report `None`). Returns `(seconds, peak_rss_bytes)` on success.
fn run_experiment(path: &Path, args: &[String]) -> Result<(f64, Option<u64>), String> {
    let stopwatch = Stopwatch::start();
    let mut child = Command::new(path)
        .args(args)
        .spawn()
        .map_err(|err| format!("failed to spawn: {err}"))?;
    let pid = child.id();
    let mut peak: Option<u64> = None;
    loop {
        match child.try_wait() {
            Ok(Some(status)) if status.success() => {
                return Ok((stopwatch.elapsed_secs(), peak));
            }
            Ok(Some(status)) => return Err(format!("exited with {status}")),
            Ok(None) => {
                if let Some(rss) = peak_rss_bytes_for(pid) {
                    peak = Some(peak.map_or(rss, |p| p.max(rss)));
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            Err(err) => return Err(format!("wait failed: {err}")),
        }
    }
}

/// Collects every `<telemetry_dir>/<exp>_summary.json` into
/// `<out_dir>/telemetry_summary.json` as an object with five keys:
/// `experiments` (the per-experiment summaries, in experiment order),
/// `wall_clock` (per-experiment seconds and peak RSS measured by
/// run_all), `combined` (all summaries merged into one roll-up),
/// `timeseries_health` (per-experiment late-point and series-capacity
/// drop counters read back from the `--live` stores, so silent data
/// loss in the observability layer itself is visible in the artifact),
/// and `failed_experiments` (names that failed so far, so a partial run
/// is visible in the artifact and not just in the exit code). Returns
/// how many summaries were folded in.
fn aggregate_summaries(
    telemetry_dir: Option<&Path>,
    live_dir: Option<&Path>,
    out_dir: &str,
    runs: &[ExperimentRun],
    failures: &[&str],
) -> Result<usize, String> {
    let mut entries: Vec<Value> = Vec::new();
    let mut combined = TelemetrySummary {
        experiment: "combined".to_owned(),
        events_recorded: 0,
        spans_recorded: 0,
        sink_dropped: 0,
        counters: Vec::new(),
        gauges: Vec::new(),
        histograms: Vec::new(),
    };
    if let Some(tdir) = telemetry_dir {
        for exp in EXPERIMENTS {
            let path = tdir.join(format!("{exp}_summary.json"));
            let Ok(raw) = std::fs::read_to_string(&path) else {
                continue; // experiment failed or predates telemetry
            };
            let value = serde_json::parse(&raw)
                .map_err(|e| format!("{}: malformed summary: {e}", path.display()))?;
            let summary = TelemetrySummary::from_value(&value)
                .map_err(|e| format!("{}: unexpected shape: {e}", path.display()))?;
            combined.merge(&summary);
            entries.push(value);
        }
    }
    let count = entries.len();
    let mut ts_health: Vec<Value> = Vec::new();
    let mut late_total = 0u64;
    let mut series_dropped_total = 0u64;
    if let Some(ldir) = live_dir {
        for exp in EXPERIMENTS {
            let path = ldir.join(format!("{exp}_timeseries.json"));
            let Ok(raw) = std::fs::read_to_string(&path) else {
                continue; // experiment failed or ran without --live
            };
            let value = serde_json::parse(&raw)
                .map_err(|e| format!("{}: malformed timeseries export: {e}", path.display()))?;
            let export = crp_telemetry::timeseries::TimeSeriesExport::from_value(&value)
                .map_err(|e| format!("{}: unexpected shape: {e}", path.display()))?;
            late_total += export.late_dropped;
            series_dropped_total += export.series_dropped;
            ts_health.push(Value::Object(vec![
                ("experiment".to_owned(), Value::String((*exp).to_owned())),
                ("late_dropped".to_owned(), Value::UInt(export.late_dropped)),
                (
                    "series_dropped".to_owned(),
                    Value::UInt(export.series_dropped),
                ),
            ]));
        }
        if late_total > 0 || series_dropped_total > 0 {
            eprintln!(
                "[run_all] timeseries health: {late_total} late point(s) dropped, \
                 {series_dropped_total} series rejected at capacity"
            );
        }
    }
    let wall_clock: Vec<Value> = runs
        .iter()
        .map(|run| {
            Value::Object(vec![
                ("experiment".to_owned(), Value::String(run.name.to_owned())),
                ("seconds".to_owned(), Value::Float(run.seconds)),
                (
                    "peak_rss_bytes".to_owned(),
                    run.peak_rss_bytes.map_or(Value::Null, Value::UInt),
                ),
            ])
        })
        .collect();
    let document = Value::Object(vec![
        ("experiments".to_owned(), Value::Array(entries)),
        ("wall_clock".to_owned(), Value::Array(wall_clock)),
        ("combined".to_owned(), combined.to_value()),
        (
            "timeseries_health".to_owned(),
            Value::Object(vec![
                ("experiments".to_owned(), Value::Array(ts_health)),
                ("late_dropped_total".to_owned(), Value::UInt(late_total)),
                (
                    "series_dropped_total".to_owned(),
                    Value::UInt(series_dropped_total),
                ),
            ]),
        ),
        (
            "failed_experiments".to_owned(),
            Value::Array(
                failures
                    .iter()
                    .map(|f| Value::String((*f).to_owned()))
                    .collect(),
            ),
        ),
    ]);
    let json = serde_json::to_string(&document).map_err(|e| e.to_string())?;
    std::fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;
    let out_path = Path::new(out_dir).join("telemetry_summary.json");
    std::fs::write(&out_path, json + "\n").map_err(|e| e.to_string())?;
    eprintln!("[run_all] wrote {}", out_path.display());
    Ok(count)
}
