//! Runs every experiment binary in sequence with shared flags —
//! regenerates all tables and figures in one command:
//!
//! ```text
//! cargo run --release -p crp-eval --bin run_all [-- --seed 42 ...]
//! ```
//!
//! Flags are forwarded verbatim to every experiment, so `--telemetry
//! <dir>` makes each binary dump its own JSONL stream and summary there;
//! run_all then folds the per-experiment summaries into
//! `<out>/telemetry_summary.json`.

use crp_eval::EvalArgs;
use std::path::Path;
use std::process::Command;
use std::time::Instant;

const EXPERIMENTS: &[&str] = &[
    "fig4_closest_latency",
    "fig5_relative_error",
    "table1_cluster_summary",
    "fig6_cluster_cdf",
    "fig7_good_clusters",
    "fig8_probe_interval",
    "fig9_window_size",
    "forensics_tail_errors",
    "ablation_name_filter",
    "ablation_similarity_metric",
    "ablation_smf_init",
    "ablation_detour",
    "ablation_overhead",
    "ablation_passive_bootstrap",
    "ablation_cluster_stability",
    "ablation_baselines",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("current executable path");
    let dir = me.parent().expect("executable has a parent directory");
    let mut failures = Vec::new();
    let mut durations: Vec<(&str, f64)> = Vec::new();
    for exp in EXPERIMENTS {
        let path = dir.join(exp);
        if !path.exists() {
            eprintln!("[run_all] {exp}: missing binary {path:?} (build the workspace first)");
            failures.push(*exp);
            continue;
        }
        eprintln!("[run_all] running {exp} ...");
        let started = Instant::now();
        match Command::new(&path).args(&args).status() {
            Ok(status) if status.success() => {
                durations.push((exp, started.elapsed().as_secs_f64()));
            }
            Ok(status) => {
                eprintln!("[run_all] {exp} FAILED with {status}");
                failures.push(*exp);
            }
            Err(err) => {
                eprintln!("[run_all] {exp} FAILED to spawn: {err}");
                failures.push(*exp);
            }
        }
    }

    eprintln!("[run_all] wall-clock durations:");
    for (exp, secs) in &durations {
        eprintln!("[run_all]   {exp:<28} {secs:7.2}s");
    }

    // Fold the per-experiment telemetry summaries into one file.
    if let Ok(parsed) = EvalArgs::try_from_args(args.clone()) {
        if let Some(tdir) = &parsed.telemetry {
            match aggregate_summaries(Path::new(tdir), &parsed.out_dir) {
                Ok(n) => eprintln!("[run_all] aggregated {n} telemetry summaries"),
                Err(err) => {
                    eprintln!("[run_all] telemetry aggregation failed: {err}");
                    failures.push("telemetry_aggregation");
                }
            }
        }
    }

    if failures.is_empty() {
        eprintln!("[run_all] all {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("[run_all] failures: {failures:?}");
        std::process::exit(1);
    }
}

/// Collects every `<telemetry_dir>/*_summary.json` into
/// `<out_dir>/telemetry_summary.json` (an object keyed `experiments` →
/// array of summaries, in experiment order). Returns how many summaries
/// were folded in.
fn aggregate_summaries(telemetry_dir: &Path, out_dir: &str) -> Result<usize, String> {
    let mut entries: Vec<serde::Value> = Vec::new();
    for exp in EXPERIMENTS {
        let path = telemetry_dir.join(format!("{exp}_summary.json"));
        let Ok(raw) = std::fs::read_to_string(&path) else {
            continue; // experiment failed or predates telemetry
        };
        let value = serde_json::parse(&raw)
            .map_err(|e| format!("{}: malformed summary: {e}", path.display()))?;
        entries.push(value);
    }
    let count = entries.len();
    let combined = serde::Value::Object(vec![(
        "experiments".to_owned(),
        serde::Value::Array(entries),
    )]);
    let json = serde_json::to_string(&combined).map_err(|e| e.to_string())?;
    std::fs::create_dir_all(out_dir).map_err(|e| e.to_string())?;
    let out_path = Path::new(out_dir).join("telemetry_summary.json");
    std::fs::write(&out_path, json + "\n").map_err(|e| e.to_string())?;
    eprintln!("[run_all] wrote {}", out_path.display());
    Ok(count)
}
