//! Runs every experiment binary in sequence with shared flags —
//! regenerates all tables and figures in one command:
//!
//! ```text
//! cargo run --release -p crp-eval --bin run_all [-- --seed 42 ...]
//! ```

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "fig4_closest_latency",
    "fig5_relative_error",
    "table1_cluster_summary",
    "fig6_cluster_cdf",
    "fig7_good_clusters",
    "fig8_probe_interval",
    "fig9_window_size",
    "forensics_tail_errors",
    "ablation_name_filter",
    "ablation_similarity_metric",
    "ablation_smf_init",
    "ablation_detour",
    "ablation_overhead",
    "ablation_passive_bootstrap",
    "ablation_cluster_stability",
    "ablation_baselines",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("current executable path");
    let dir = me.parent().expect("executable has a parent directory");
    let mut failures = Vec::new();
    for exp in EXPERIMENTS {
        let path = dir.join(exp);
        if !path.exists() {
            eprintln!("[run_all] {exp}: missing binary {path:?} (build the workspace first)");
            failures.push(*exp);
            continue;
        }
        eprintln!("[run_all] running {exp} ...");
        let status = Command::new(&path)
            .args(&args)
            .status()
            .expect("spawn experiment");
        if !status.success() {
            eprintln!("[run_all] {exp} FAILED with {status}");
            failures.push(*exp);
        }
    }
    if failures.is_empty() {
        eprintln!("[run_all] all {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("[run_all] failures: {failures:?}");
        std::process::exit(1);
    }
}
