//! Figure 8: average rank of CRP's Top-1 recommendation under probe
//! intervals of 20, 100, 500 and 2000 minutes.
//!
//! Paper shape: 20 and 100 minutes perform nearly identically (an
//! effective service needs only a ~100-minute request interval); rank
//! degrades at 500 and sharply at 2000 minutes, and fewer clients can be
//! positioned at all at long intervals.

use crp::{Scenario, ScenarioConfig};
use crp_core::{SimilarityMetric, WindowPolicy};
use crp_eval::closest::average_ranks;
use crp_eval::output::{self, sorted_series};
use crp_eval::EvalArgs;
use crp_netsim::{SimDuration, SimTime};

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "fig8_probe_interval");
    let hours = args.hours.unwrap_or(120);
    let scenario = Scenario::build(ScenarioConfig {
        seed: args.seed,
        candidate_servers: args.candidates.unwrap_or(240),
        clients: args.clients.unwrap_or(1_000),
        cdn_scale: args.scale.unwrap_or(1.0),
        ..ScenarioConfig::default()
    });
    output::section("Fig. 8", "average rank vs probe interval");
    output::kv(&[
        ("seed", args.seed.to_string()),
        ("clients", scenario.clients().len().to_string()),
        ("candidates", scenario.candidates().len().to_string()),
        ("campaign", format!("{hours}h")),
    ]);

    let end = SimTime::from_hours(hours);
    let eval_times: Vec<SimTime> = (0..4)
        .map(|i| SimTime::from_hours(hours - 24 + i * 8))
        .collect();

    let intervals_mins = [20u64, 100, 500, 2_000];
    let mut csv_columns: Vec<Vec<f64>> = Vec::new();
    let mut plotted: Vec<usize> = Vec::new();
    for mins in intervals_mins {
        // All probes taken at this interval feed the ratio maps: the
        // interval alone controls how much information a node has.
        let service = scenario.observe_all(
            SimTime::ZERO,
            end,
            SimDuration::from_mins(mins),
            WindowPolicy::All,
            SimilarityMetric::Cosine,
        );
        let ranks = average_ranks(&scenario, &service, &eval_times);
        let series: Vec<f64> = ranks.iter().map(|(_, r)| *r).collect();
        println!(
            "  interval {:>5} min: {}",
            mins,
            output::summary_line(&series)
        );
        plotted.push(series.len());
        csv_columns.push(sorted_series(&series));
    }
    println!(
        "\n  positionable clients per interval (paper: fewer at long intervals): {:?}",
        plotted
    );

    let max_len = csv_columns.iter().map(Vec::len).max().unwrap_or(0);
    let rows: Vec<String> = (0..max_len)
        .map(|i| {
            let cells: Vec<String> = csv_columns
                .iter()
                .map(|col| col.get(i).map(|v| format!("{v:.3}")).unwrap_or_default())
                .collect();
            format!("{},{}", i, cells.join(","))
        })
        .collect();
    output::write_csv(
        &args.out_dir,
        "fig8_probe_interval.csv",
        "client_index,rank_20min,rank_100min,rank_500min,rank_2000min",
        &rows,
    );
    output::write_gnuplot(
        &args.out_dir,
        "fig8_probe_interval",
        "Fig. 8: average rank vs probe interval",
        "average rank",
        "fig8_probe_interval.csv",
        &[
            (2, "20 min"),
            (3, "100 min"),
            (4, "500 min"),
            (5, "2000 min"),
        ],
    );
}
