//! Figure 7: number of good clusters per diameter bucket (0–25 ms and
//! 25–75 ms), CRP (t=0.1) vs ASN-based clustering.
//!
//! Paper shape: CRP finds ≥1.5× the good clusters of ASN in the first
//! bucket and more than double in the second — it groups nearby nodes
//! that sit in different ASes.

use crp_eval::output;
use crp_eval::{run_clustering, ClusterExpConfig, EvalArgs};

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "fig7_good_clusters");
    let mut cfg = ClusterExpConfig::paper(&args);
    cfg.thresholds = vec![0.1];
    output::section("Fig. 7", "good clusters per diameter bucket: CRP vs ASN");
    output::kv(&[
        ("seed", args.seed.to_string()),
        ("nodes", cfg.nodes.to_string()),
    ]);

    let data = run_clustering(&cfg);
    let (_, crp) = &data.crp[0];
    let crp_report = data.quality(crp);
    let asn_report = data.quality(&data.asn);

    let buckets = [(0.0, 25.0), (25.0, 75.0)];
    println!("\n  {:<22} {:>6} {:>6}", "diameter bucket", "CRP", "ASN");
    let mut rows = Vec::new();
    for (lo, hi) in buckets {
        let c = crp_report.good_in_diameter_bucket(lo, hi);
        let a = asn_report.good_in_diameter_bucket(lo, hi);
        println!("  {:<22} {:>6} {:>6}", format!("{lo:.0}-{hi:.0} ms"), c, a);
        rows.push(format!("{lo:.0}-{hi:.0},{c},{a}"));
    }
    output::write_csv(
        &args.out_dir,
        "fig7_good_clusters.csv",
        "bucket_ms,crp_good,asn_good",
        &rows,
    );
}
