//! Ablation: cluster stability under network dynamics.
//!
//! The paper leaves "determination of the optimal threshold" and the
//! temporal behavior of clusters as future work. This ablation measures
//! how much SMF clusterings churn as the network evolves: cluster the
//! same node set at several times across route epochs and report the
//! pairwise agreement (fraction of node pairs whose co-clustering
//! relation is preserved).

use crp::{Scenario, ScenarioConfig};
use crp_core::{Clustering, SimilarityMetric, SmfConfig, WindowPolicy};
use crp_eval::output;
use crp_eval::EvalArgs;
use crp_netsim::{HostId, SimDuration, SimTime};

/// Fraction of node pairs on which two clusterings agree (same cluster
/// vs different cluster) — the Rand index.
fn rand_index(a: &Clustering<HostId>, b: &Clustering<HostId>, nodes: &[HostId]) -> f64 {
    let mut agree = 0u64;
    let mut total = 0u64;
    for (i, x) in nodes.iter().enumerate() {
        for y in &nodes[i + 1..] {
            let together_a = a.cluster_of(x).is_some() && a.cluster_of(x) == a.cluster_of(y);
            let together_b = b.cluster_of(x).is_some() && b.cluster_of(x) == b.cluster_of(y);
            if together_a == together_b {
                agree += 1;
            }
            total += 1;
        }
    }
    agree as f64 / total.max(1) as f64
}

fn main() {
    let args = EvalArgs::parse();
    let telemetry = crp_eval::telemetry::session(&args, "ablation_cluster_stability");
    let scenario = Scenario::build(ScenarioConfig {
        seed: args.seed,
        candidate_servers: 0,
        clients: args.clients.unwrap_or(120),
        cdn_scale: args.scale.unwrap_or(1.0),
        broad_clients: true,
        ..ScenarioConfig::default()
    });
    output::section("ablation", "cluster stability across route epochs");
    output::kv(&[
        ("seed", args.seed.to_string()),
        ("nodes", scenario.clients().len().to_string()),
    ]);

    let horizon = SimTime::from_hours(48);
    let service = scenario.observe_hosts(
        scenario.clients(),
        SimTime::ZERO,
        horizon,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );

    // Snapshot the clustering every 6 hours of the second day.
    let snapshots: Vec<(SimTime, Clustering<HostId>)> = (0..5)
        .map(|i| {
            let t = SimTime::from_hours(24 + i * 6);
            (t, service.cluster(&SmfConfig::paper(0.1), t))
        })
        .collect();

    println!("\n  snapshot summaries:");
    for (t, c) in &snapshots {
        let s = c.summary();
        println!(
            "    {}h: {} clusters, {} nodes clustered",
            t.as_millis() / 3_600_000,
            s.num_clusters,
            s.nodes_clustered
        );
    }

    let nodes = scenario.clients();
    let mut rows = Vec::new();
    println!("\n  pairwise Rand index between consecutive snapshots:");
    let mut indices = Vec::new();
    for w in snapshots.windows(2) {
        let ri = rand_index(&w[0].1, &w[1].1, nodes);
        indices.push(ri);
        println!(
            "    {}h -> {}h: {:.3}",
            w[0].0.as_millis() / 3_600_000,
            w[1].0.as_millis() / 3_600_000,
            ri
        );
        rows.push(format!(
            "{},{},{:.4}",
            w[0].0.as_millis() / 3_600_000,
            w[1].0.as_millis() / 3_600_000,
            ri
        ));
    }
    let mean_ri = output::mean(&indices).unwrap_or(f64::NAN);
    println!("\n  mean consecutive agreement: {mean_ri:.3} (1.0 = perfectly stable)");

    output::write_csv(
        &args.out_dir,
        "ablation_cluster_stability.csv",
        "from_hour,to_hour,rand_index",
        &rows,
    );

    // Audit pass: the full drift + churn scan over the same recorded
    // history — this is the run that exercises CDN remap detection, so
    // it scans the whole horizon at route-epoch granularity with the
    // clustering diff enabled.
    if let Some(audit_dir) = telemetry.audit_dir() {
        let drift_cfg = crp_audit::drift::DriftConfig::new(
            SimTime::from_hours(2),
            horizon,
            SimDuration::from_hours(6),
        );
        let timeline = crp_audit::drift::scan(&service, scenario.clients(), &drift_cfg);
        println!("\n  audit:");
        output::kv(&[
            ("drift windows", timeline.windows.len().to_string()),
            (
                "max drifted fraction",
                format!("{:.3}", timeline.max_drifted_fraction()),
            ),
            (
                "max cluster distance",
                format!("{:.3}", timeline.max_cluster_distance()),
            ),
            ("remap events", timeline.remap_events.len().to_string()),
            ("drift events", timeline.drift_event_count().to_string()),
        ]);
        crp_eval::audit::write_drift(audit_dir, "ablation_cluster_stability", &timeline);
    }
}
