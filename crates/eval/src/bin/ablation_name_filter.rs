//! §VI ablation: the CDN-owned-address name filter.
//!
//! The paper observes that when Akamai answers with addresses from its
//! own block, those servers are usually far from the client, and
//! proposes filtering such answers. This ablation runs the closest-node
//! experiment at reduced CDN coverage (so fallbacks actually occur),
//! identifies the clients whose ratio maps were polluted by CDN-owned
//! answers, and compares that subset's selection quality with the
//! filter off and on.

use crp_eval::output;
use crp_eval::{run_closest, run_clustering, ClosestConfig, ClusterExpConfig, EvalArgs};
use crp_netsim::HostId;
use std::collections::BTreeSet;

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "ablation_name_filter");
    output::section("§VI", "ablation: CDN-owned-address answer filtering");
    output::kv(&[
        ("seed", args.seed.to_string()),
        (
            "note",
            "reduced CDN coverage so fallback answers actually occur".to_owned(),
        ),
    ]);

    let cfg = |filter: bool| ClosestConfig {
        filter_cdn_owned: filter,
        inject_faults: false,
        // The filter only matters where coverage is poor: shrink the
        // footprint so a meaningful share of clients sees fallbacks.
        cdn_scale: args.scale.unwrap_or(0.12),
        ..ClosestConfig::paper(&args)
    };
    let unfiltered = run_closest(&cfg(false));
    let filtered = run_closest(&cfg(true));

    // Clients whose unfiltered ratio maps put mass on CDN-owned replicas.
    let cdn = unfiltered.scenario.cdn();
    let polluted: BTreeSet<HostId> = unfiltered
        .scenario
        .clients()
        .iter()
        .filter(|&&c| {
            unfiltered
                .service
                .ratio_map(&c, unfiltered.eval_time)
                .map(|m| {
                    m.iter()
                        .any(|(r, v)| v > 0.0 && cdn.replicas()[r.index()].is_cdn_owned())
                })
                .unwrap_or(false)
        })
        .copied()
        .collect();
    println!(
        "\n  clients with CDN-owned answers in their maps: {}/{}",
        polluted.len(),
        unfiltered.scenario.clients().len()
    );

    let subset_penalties = |run: &crp_eval::closest::ClosestRun| -> Vec<f64> {
        run.outcomes
            .iter()
            .filter(|o| polluted.contains(&o.client))
            .map(|o| o.crp_top1_ms - o.optimal_ms)
            .collect()
    };
    let off = subset_penalties(&unfiltered);
    let on = subset_penalties(&filtered);
    println!("\n  top-1 penalty (ms) over the affected clients:");
    output::kv(&[
        ("filter OFF", output::summary_line(&off)),
        ("filter ON", output::summary_line(&on)),
    ]);

    let all_off: Vec<f64> = unfiltered
        .outcomes
        .iter()
        .map(|o| o.crp_top1_ms - o.optimal_ms)
        .collect();
    let all_on: Vec<f64> = filtered
        .outcomes
        .iter()
        .map(|o| o.crp_top1_ms - o.optimal_ms)
        .collect();
    println!("\n  top-1 penalty (ms) over all clients:");
    output::kv(&[
        ("filter OFF", output::summary_line(&all_off)),
        ("filter ON", output::summary_line(&all_on)),
    ]);

    // Clustering side: shared fallback replicas can merge genuinely
    // distant sparse-region nodes into spurious clusters; the filter
    // should remove exactly those merges.
    println!("\n  clustering under the same reduced coverage (broad cohort, t=0.1):");
    let mut spurious_rows = Vec::new();
    for filter in [false, true] {
        let ccfg = ClusterExpConfig {
            cdn_scale: args.scale.unwrap_or(0.12),
            thresholds: vec![0.1],
            filter_cdn_owned: filter,
            ..ClusterExpConfig::paper(&args)
        };
        let data = run_clustering(&ccfg);
        let (_, clustering) = &data.crp[0];
        let report = data.quality(clustering);
        // "Spurious": a formed cluster whose members span > 150 ms.
        let spurious = report
            .records()
            .iter()
            .filter(|r| r.diameter_ms > 150.0)
            .count();
        let good = report.good_in_diameter_bucket(0.0, 75.0);
        println!(
            "    filter {}: {} clusters, {} good (<75 ms), {} spurious (>150 ms diameter)",
            if filter { "ON " } else { "OFF" },
            clustering.summary().num_clusters,
            good,
            spurious
        );
        spurious_rows.push(format!(
            "cluster_filter_{filter},{},{:.3},{:.3}",
            clustering.summary().num_clusters,
            good as f64,
            spurious as f64
        ));
    }

    let row = |label: &str, v: &[f64], n: usize| {
        format!(
            "{label},{n},{:.3},{:.3}",
            output::mean(v).unwrap_or(f64::NAN),
            output::quantile(v, 0.9).unwrap_or(f64::NAN)
        )
    };
    output::write_csv(
        &args.out_dir,
        "ablation_name_filter.csv",
        "config,clients,mean_penalty_ms,p90_penalty_ms",
        &[
            row("affected_off", &off, off.len()),
            row("affected_on", &on, on.len()),
            row("all_off", &all_off, all_off.len()),
            row("all_on", &all_on, all_on.len()),
            spurious_rows[0].clone(),
            spurious_rows[1].clone(),
        ],
    );
}
