//! §VI ablation: bootstrapping time, active probing vs passive
//! monitoring.
//!
//! The paper derives a ~100-minute bootstrap for active probing
//! (10 probes × 10-minute interval). A passive deployment bootstraps at
//! the rate users browse; this ablation sweeps browsing intensity and
//! reports the time until each client holds the 10 observations the
//! paper deems sufficient.

use crp::{CdnProbe, PassiveMonitor, Scenario, ScenarioConfig};
use crp_core::ObservationSource;
use crp_eval::output;
use crp_eval::EvalArgs;
use crp_netsim::{noise, SimDuration, SimTime};

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "ablation_passive_bootstrap");
    let scenario = Scenario::build(ScenarioConfig {
        seed: args.seed,
        candidate_servers: 0,
        clients: args.clients.unwrap_or(60),
        cdn_scale: args.scale.unwrap_or(0.5),
        ..ScenarioConfig::default()
    });
    output::section("§VI", "bootstrap time to a 10-observation window");
    output::kv(&[("seed", args.seed.to_string())]);

    let horizon = SimTime::from_hours(48);
    let names = scenario.names().to_vec();
    let mut rows = Vec::new();

    // Active probing at the paper's cadence.
    let mut active_minutes = Vec::new();
    for &host in scenario.clients() {
        let mut probe = CdnProbe::new(scenario.cdn(), host, names.clone());
        let mut got = 0u32;
        for t in SimTime::ZERO.iter_until(horizon, SimDuration::from_mins(10)) {
            if probe.observe(t).is_some() {
                got += 1;
                if got >= 10 {
                    active_minutes.push(t.as_millis() as f64 / 60_000.0);
                    break;
                }
            }
        }
    }
    println!(
        "\n  active probing @10min: {}",
        output::summary_line(&active_minutes)
    );
    rows.push(format!(
        "active_10min,{:.1}",
        output::mean(&active_minutes).unwrap_or(f64::NAN)
    ));

    // Passive monitoring at several browsing intensities.
    for bursts_per_day in [8u64, 24, 72] {
        let gap_mins = 24 * 60 / bursts_per_day;
        let mut minutes = Vec::new();
        for &host in scenario.clients() {
            let mut monitor = PassiveMonitor::new(scenario.cdn(), host, names.clone());
            let mut done = None;
            let mut burst = 0u64;
            while done.is_none() {
                let start_min =
                    burst * gap_mins + noise::mix(&[host.key(), burst]) % gap_mins.max(1);
                let start = SimTime::from_mins(start_min);
                if start >= horizon {
                    break;
                }
                monitor.browse_session(start, SimDuration::from_mins(3), 6);
                if monitor.is_bootstrapped() {
                    done = Some(start_min as f64 + 3.0);
                }
                burst += 1;
            }
            if let Some(m) = done {
                minutes.push(m);
            }
        }
        println!(
            "  passive, {bursts_per_day:>2} bursts/day:  {} (bootstrapped {}/{})",
            output::summary_line(&minutes),
            minutes.len(),
            scenario.clients().len()
        );
        rows.push(format!(
            "passive_{bursts_per_day}_bursts,{:.1}",
            output::mean(&minutes).unwrap_or(f64::NAN)
        ));
    }

    println!("\n  paper: active bootstrap ≈ 100 minutes; passive tracks browsing intensity");
    output::write_csv(
        &args.out_dir,
        "ablation_passive_bootstrap.csv",
        "mode,mean_bootstrap_minutes",
        &rows,
    );
}
