//! §II ablation: one-hop detouring through CDN replicas.
//!
//! Reproduces the headline of the authors' SIGCOMM 2006 study that
//! motivated CRP: "in approximately 50% of scenarios, the best measured
//! one-hop path through an Akamai server outperforms the direct path in
//! terms of latency". Waypoint candidates come straight from the two
//! endpoints' ratio maps — no probing beyond the existing CRP
//! observations plus one relay measurement per candidate.

use crp::{DetourFinder, Scenario, ScenarioConfig};
use crp_core::{SimilarityMetric, WindowPolicy};
use crp_eval::output;
use crp_eval::EvalArgs;
use crp_netsim::{SimDuration, SimTime};

fn main() {
    let args = EvalArgs::parse();
    let _telemetry = crp_eval::telemetry::session(&args, "ablation_detour");
    let scenario = Scenario::build(ScenarioConfig {
        seed: args.seed,
        candidate_servers: 0,
        clients: args.clients.unwrap_or(120),
        cdn_scale: args.scale.unwrap_or(1.0),
        ..ScenarioConfig::default()
    });
    output::section(
        "§II",
        "one-hop detouring through CDN replicas (SIGCOMM'06 motivation)",
    );
    output::kv(&[
        ("seed", args.seed.to_string()),
        ("hosts", scenario.clients().len().to_string()),
    ]);

    let end = SimTime::from_hours(args.hours.unwrap_or(12));
    let service = scenario.observe_hosts(
        scenario.clients(),
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );
    let finder = DetourFinder::new(scenario.cdn());

    let mut wins = 0usize;
    let mut total = 0usize;
    let mut savings = Vec::new();
    let mut rows = Vec::new();
    let clients = scenario.clients();
    for (i, &src) in clients.iter().enumerate() {
        for &dst in &clients[i + 1..] {
            let (Ok(sm), Ok(dm)) = (service.ratio_map(&src, end), service.ratio_map(&dst, end))
            else {
                continue;
            };
            let o = finder.find(src, dst, &sm, &dm, end);
            total += 1;
            if o.detour_wins() {
                wins += 1;
                savings.push(o.savings().millis());
            }
            if rows.len() < 5_000 {
                rows.push(format!(
                    "{},{},{:.3},{},{}",
                    src.index(),
                    dst.index(),
                    o.direct.millis(),
                    o.best_detour
                        .map(|d| format!("{:.3}", d.millis()))
                        .unwrap_or_default(),
                    o.detour_wins()
                ));
            }
        }
    }

    println!();
    output::kv(&[
        (
            "detour beats direct",
            format!(
                "{wins}/{total} pairs ({:.0}%, paper: ~50%)",
                wins as f64 / total.max(1) as f64 * 100.0
            ),
        ),
        ("savings when winning (ms)", output::summary_line(&savings)),
    ]);
    output::write_csv(
        &args.out_dir,
        "ablation_detour.csv",
        "src,dst,direct_ms,best_detour_ms,detour_wins",
        &rows,
    );
}
