//! Figure 4: average latency to the selected server, per client, for
//! Meridian vs CRP Top-1 vs CRP Top-5.
//!
//! Paper shape: CRP Top-5 tracks Meridian over the body of the
//! distribution (≈65% of clients within ~7 ms / ~12%), beats it for
//! over 25% of clients, and both degrade in a poorly-covered tail.

use crp_audit::drift::DriftConfig;
use crp_eval::output::{self, sorted_series};
use crp_eval::{run_closest, ClosestConfig, EvalArgs};
use crp_netsim::{SimDuration, SimTime};

fn main() {
    let args = EvalArgs::parse();
    let telemetry = crp_eval::telemetry::session(&args, "fig4_closest_latency");
    let cfg = ClosestConfig::paper(&args);
    output::section(
        "Fig. 4",
        "closest-node selection: average latency per client",
    );
    output::kv(&[
        ("seed", args.seed.to_string()),
        ("clients", cfg.clients.to_string()),
        ("candidates", cfg.candidates.to_string()),
        (
            "campaign",
            format!("{}h @ {}", cfg.observe_hours, cfg.probe_interval),
        ),
    ]);

    let run = run_closest(&cfg);

    // Audit pass: classify tail-rank inversions into the provenance log
    // and drift-scan the candidates' recorded history. Both read state
    // the experiment already produced — nothing upstream changes.
    if let Some(audit_dir) = telemetry.audit_dir() {
        let (total, unexplained) =
            crp_eval::audit::record_inversions(&run.outcomes, cfg.candidates);
        let mut drift_cfg = DriftConfig::new(
            SimTime::ZERO,
            SimTime::from_hours(cfg.observe_hours),
            SimDuration::from_hours((cfg.observe_hours / 6).max(1)),
        );
        drift_cfg.smf = None; // candidate drift only; churn is ablation_cluster_stability's job
        let timeline = crp_audit::drift::scan(&run.service, run.scenario.candidates(), &drift_cfg);
        println!("\n  audit:");
        output::kv(&[
            (
                "tail inversions",
                format!("{total} ({unexplained} unexplained)"),
            ),
            ("drift windows", timeline.windows.len().to_string()),
            (
                "max drifted fraction",
                format!("{:.3}", timeline.max_drifted_fraction()),
            ),
            ("remap events", timeline.remap_events.len().to_string()),
        ]);
        crp_eval::audit::write_drift(audit_dir, "fig4_closest_latency", &timeline);
    }

    let meridian: Vec<f64> = run.outcomes.iter().map(|o| o.meridian_ms).collect();
    let top1: Vec<f64> = run.outcomes.iter().map(|o| o.crp_top1_ms).collect();
    let top5: Vec<f64> = run.outcomes.iter().map(|o| o.crp_top5_ms).collect();
    let optimal: Vec<f64> = run.outcomes.iter().map(|o| o.optimal_ms).collect();

    println!("\n  per-client average latency to the selected server (ms):");
    output::kv(&[
        ("optimal", output::summary_line(&optimal)),
        ("meridian", output::summary_line(&meridian)),
        ("crp top-1", output::summary_line(&top1)),
        ("crp top-5", output::summary_line(&top5)),
    ]);

    // Head-to-head: CRP Top-5 vs Meridian, the paper's headline numbers.
    let diffs: Vec<f64> = run
        .outcomes
        .iter()
        .map(|o| o.crp_top5_ms - o.meridian_ms)
        .collect();
    let within_7ms = diffs.iter().filter(|d| d.abs() < 7.0).count() as f64 / diffs.len() as f64;
    let crp_wins = diffs.iter().filter(|d| **d < 0.0).count() as f64 / diffs.len() as f64;
    let meridian_2x = run
        .outcomes
        .iter()
        .filter(|o| o.meridian_ms > 2.0 * o.crp_top5_ms.max(1.0))
        .count() as f64
        / diffs.len() as f64;
    println!(
        "\n  CRP Top-5 vs Meridian (paper: ~65% within 7 ms, >25% better, ~10% meridian 2x worse):"
    );
    output::kv(&[
        ("|diff| < 7 ms", format!("{:.1}%", within_7ms * 100.0)),
        ("CRP better", format!("{:.1}%", crp_wins * 100.0)),
        ("Meridian > 2x CRP", format!("{:.1}%", meridian_2x * 100.0)),
    ]);

    // CSV: each curve sorted independently, like the paper's plot.
    let sm = sorted_series(&meridian);
    let s1 = sorted_series(&top1);
    let s5 = sorted_series(&top5);
    let so = sorted_series(&optimal);
    let rows: Vec<String> = (0..sm.len())
        .map(|i| format!("{},{:.3},{:.3},{:.3},{:.3}", i, sm[i], s1[i], s5[i], so[i]))
        .collect();
    output::write_csv(
        &args.out_dir,
        "fig4_closest_latency.csv",
        "client_index,meridian_ms,crp_top1_ms,crp_top5_ms,optimal_ms",
        &rows,
    );
    output::write_gnuplot(
        &args.out_dir,
        "fig4_closest_latency",
        "Fig. 4: average latency to the selected server",
        "average latency (ms)",
        "fig4_closest_latency.csv",
        &[
            (2, "Meridian"),
            (3, "CRP Top-1"),
            (4, "CRP Top-5"),
            (5, "optimal"),
        ],
    );
}
