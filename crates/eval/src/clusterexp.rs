//! The clustering experiment kernel (§V-B, Table I, Figs. 6–7).
//!
//! 177 broadly distributed DNS servers observe CDN redirections; SMF
//! clusters them at several thresholds; ASN clustering provides the
//! baseline; King-style measurements provide the ground-truth distances
//! for the quality analysis.

use crp::{Scenario, ScenarioConfig};
use crp_baselines::asn_clustering;
use crp_cdn::ReplicaId;
use crp_core::{Clustering, CrpService, QualityReport, SimilarityMetric, SmfConfig, WindowPolicy};
use crp_netsim::{HostId, KingConfig, SimDuration, SimTime};
use std::collections::HashMap;

use crate::cli::EvalArgs;

/// Configuration of a clustering experiment run.
#[derive(Clone, Debug)]
pub struct ClusterExpConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of DNS-server nodes to cluster (paper: 177).
    pub nodes: usize,
    /// CDN footprint scale.
    pub cdn_scale: f64,
    /// Observation-campaign length.
    pub observe_hours: u64,
    /// SMF thresholds to sweep (paper: 0.01, 0.1, 0.5).
    pub thresholds: Vec<f64>,
    /// King measurement attempts per pair for ground truth.
    pub king_attempts: usize,
    /// Apply the §VI CDN-owned-address filter to every probe.
    pub filter_cdn_owned: bool,
}

impl ClusterExpConfig {
    /// The paper-scale configuration, with overrides from common flags.
    pub fn paper(args: &EvalArgs) -> Self {
        ClusterExpConfig {
            seed: args.seed,
            nodes: args.clients.unwrap_or(177),
            cdn_scale: args.scale.unwrap_or(1.0),
            observe_hours: args.hours.unwrap_or(36),
            thresholds: vec![0.01, 0.1, 0.5],
            king_attempts: 3,
            filter_cdn_owned: false,
        }
    }

    /// A fast configuration for tests and smoke runs.
    pub fn smoke(seed: u64) -> Self {
        ClusterExpConfig {
            seed,
            nodes: 30,
            cdn_scale: 0.3,
            observe_hours: 6,
            thresholds: vec![0.1],
            king_attempts: 2,
            filter_cdn_owned: false,
        }
    }
}

/// Everything the clustering figures need.
pub struct ClusterExpData {
    /// The scenario (network, CDN, populations).
    pub scenario: Scenario,
    /// The observation service after the campaign.
    pub service: CrpService<HostId, ReplicaId>,
    /// CRP clusterings, one per threshold, in threshold order.
    pub crp: Vec<(f64, Clustering<HostId>)>,
    /// The ASN-clustering baseline.
    pub asn: Clustering<HostId>,
    /// Symmetric King-measured ground-truth distances in ms, keyed by
    /// ordered host pair.
    pub king_ms: HashMap<(HostId, HostId), f64>,
}

impl ClusterExpData {
    /// The ground-truth distance between two nodes in ms.
    ///
    /// # Panics
    ///
    /// Panics if the pair was not part of the experiment's node set.
    pub fn dist_ms(&self, a: HostId, b: HostId) -> f64 {
        if a == b {
            return 0.0;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        *self.king_ms.get(&key).expect("pair measured") // crp-lint: allow(CRP001) — king matrix is precomputed for every pair
    }

    /// Quality report for a clustering under the King ground truth.
    pub fn quality(&self, clustering: &Clustering<HostId>) -> QualityReport {
        QualityReport::evaluate(clustering, |a, b| self.dist_ms(*a, *b))
    }
}

/// Runs the clustering experiment.
pub fn run_clustering(cfg: &ClusterExpConfig) -> ClusterExpData {
    crp_telemetry::profile_scope!("eval.run_clustering");
    crp_telemetry::mem_domain!("eval.cluster");
    let scenario = Scenario::build(ScenarioConfig {
        seed: cfg.seed,
        candidate_servers: 0,
        clients: cfg.nodes,
        cdn_scale: cfg.cdn_scale,
        broad_clients: true,
        filter_cdn_owned: cfg.filter_cdn_owned,
        ..ScenarioConfig::default()
    });
    let start = SimTime::ZERO;
    let end = SimTime::from_hours(cfg.observe_hours);
    let service = scenario.observe_hosts(
        scenario.clients(),
        start,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );

    let crp = cfg
        .thresholds
        .iter()
        .map(|&t| {
            let mut smf = SmfConfig::paper(t);
            smf.seed = cfg.seed;
            (t, service.cluster(&smf, end))
        })
        .collect();

    let asn = asn_clustering(scenario.network(), scenario.clients());

    // Ground truth: King measurements between every node pair, median of
    // `king_attempts` spread over the campaign's final hours.
    let king = scenario.king(KingConfig::default());
    let truth_start = SimTime::from_hours(cfg.observe_hours.saturating_sub(3).max(1) - 1);
    let mut king_ms = HashMap::new();
    let nodes = scenario.clients();
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            let est = king
                .median_estimate(a, b, truth_start, end, cfg.king_attempts)
                // A fully failed King pair falls back to the direct model
                // (the paper filtered unresponsive servers up front).
                .unwrap_or_else(|| scenario.network().rtt(a, b, end));
            let key = if a <= b { (a, b) } else { (b, a) };
            king_ms.insert(key, est.millis());
        }
    }

    ClusterExpData {
        scenario,
        service,
        crp,
        asn,
        king_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_complete() {
        let data = run_clustering(&ClusterExpConfig::smoke(1));
        assert_eq!(data.asn.total_nodes(), 30);
        let (_, crp) = &data.crp[0];
        // CRP clusters every node that produced observations.
        assert!(crp.total_nodes() >= 25, "{}", crp.total_nodes());
        // Ground-truth matrix covers all pairs.
        assert_eq!(data.king_ms.len(), 30 * 29 / 2);
    }

    #[test]
    fn dist_is_symmetric_and_zero_on_diagonal() {
        let data = run_clustering(&ClusterExpConfig::smoke(2));
        let nodes = data.scenario.clients().to_vec();
        assert_eq!(data.dist_ms(nodes[0], nodes[0]), 0.0);
        assert_eq!(
            data.dist_ms(nodes[0], nodes[1]),
            data.dist_ms(nodes[1], nodes[0])
        );
    }

    #[test]
    fn quality_report_is_consistent() {
        let data = run_clustering(&ClusterExpConfig::smoke(3));
        let (_, crp) = &data.crp[0];
        let report = data.quality(crp);
        for r in report.records() {
            assert!(r.intra_ms >= 0.0);
            assert!(
                r.diameter_ms >= r.intra_ms * 0.99,
                "diameter {:.1} below intra {:.1}",
                r.diameter_ms,
                r.intra_ms
            );
        }
    }

    #[test]
    fn crp_clusters_more_nodes_than_asn() {
        // The paper's headline clustering claim, checked at smoke scale:
        // CRP groups nodes across AS boundaries.
        let data = run_clustering(&ClusterExpConfig::smoke(4));
        let (_, crp) = &data.crp[0];
        assert!(
            crp.summary().nodes_clustered >= data.asn.summary().nodes_clustered,
            "CRP {} < ASN {}",
            crp.summary().nodes_clustered,
            data.asn.summary().nodes_clustered
        );
    }
}
