//! End-to-end check of `--telemetry`: runs `fig9_window_size` at a tiny
//! scale and cross-checks the JSONL stream against the summary — every
//! `event.<name>` counter must equal the stream's event count for that
//! name, and the summary's tracker counter must equal the total
//! independently recomputed from the per-host event fields.

use crp_telemetry::TelemetrySummary;
use serde::Deserialize as _;
use serde::Value;
use std::collections::BTreeMap;
use std::process::Command;

fn str_field(value: &Value, name: &str) -> String {
    match value.field(name).expect("field present") {
        Value::String(s) => s.clone(),
        other => panic!("field `{name}` is not a string: {other:?}"),
    }
}

fn u64_field(value: &Value, name: &str) -> u64 {
    match value.field(name).expect("field present") {
        Value::Int(i) if *i >= 0 => *i as u64,
        Value::UInt(u) => *u,
        other => panic!("field `{name}` is not an unsigned integer: {other:?}"),
    }
}

#[test]
fn fig9_telemetry_stream_matches_summary() {
    let dir = std::env::temp_dir().join(format!("crp-telemetry-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out_dir = dir.join("results");
    let clients = 12usize;
    let candidates = 8usize;
    let status = Command::new(env!("CARGO_BIN_EXE_fig9_window_size"))
        .args(["--seed", "5", "--hours", "12", "--scale", "0.25"])
        .args(["--clients", &clients.to_string()])
        .args(["--candidates", &candidates.to_string()])
        .arg("--out")
        .arg(&out_dir)
        .arg("--telemetry")
        .arg(&dir)
        .status()
        .expect("run fig9_window_size");
    assert!(status.success(), "fig9_window_size failed: {status}");

    // Walk the JSONL stream, counting independently of the summary.
    let jsonl = std::fs::read_to_string(dir.join("fig9_window_size.jsonl"))
        .expect("telemetry JSONL written");
    let mut event_lines = 0u64;
    let mut span_pairs = 0u64;
    let mut per_name: BTreeMap<String, u64> = BTreeMap::new();
    let mut observations_from_events = 0u64;
    let mut hosts_observed = 0u64;
    for line in jsonl.lines() {
        let value = serde_json::parse(line).expect("every JSONL line parses");
        match str_field(&value, "kind").as_str() {
            "event" => {
                event_lines += 1;
                let name = str_field(&value, "name");
                if name == "scenario.host_observed" {
                    hosts_observed += 1;
                    let fields = value.field("fields").expect("event fields");
                    observations_from_events += u64_field(fields, "observations");
                }
                *per_name.entry(name).or_insert(0) += 1;
            }
            "span_end" => span_pairs += 1,
            "span_start" => {}
            other => panic!("unknown record kind `{other}` in line: {line}"),
        }
    }
    assert!(event_lines > 0, "instrumentation emitted no events");

    let raw = std::fs::read_to_string(dir.join("fig9_window_size_summary.json"))
        .expect("telemetry summary written");
    let summary = TelemetrySummary::from_value(&serde_json::parse(&raw).expect("summary is JSON"))
        .expect("summary deserializes");

    assert_eq!(summary.experiment, "fig9_window_size");
    assert_eq!(summary.events_recorded, event_lines);
    assert_eq!(summary.spans_recorded, span_pairs);
    for (name, n) in &per_name {
        assert_eq!(
            summary.counter(&format!("event.{name}")),
            Some(*n),
            "counter/stream mismatch for event `{name}`"
        );
    }

    // Independent totals: every probed host emits one event whose
    // `observations` field counts its tracker records.
    assert_eq!(hosts_observed, (clients + candidates) as u64);
    assert_eq!(
        summary.counter("core.tracker.observations"),
        Some(observations_from_events),
        "tracker counter disagrees with the per-host event fields"
    );

    // The instrumented subsystems all reported in.
    for counter in ["cdn.queries", "core.ratio_map.builds", "netsim.rtt_samples"] {
        assert!(
            summary.counter(counter).unwrap_or(0) > 0,
            "expected counter `{counter}` to be non-zero"
        );
    }
    assert!(
        summary.histogram("core.ranking.top_score").is_some(),
        "ranking histogram missing"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
