//! Domain observability for CRP: drift detection and run-health
//! verdicts.
//!
//! crp-telemetry (PR 2) answers "what did the pipeline *do*" — counters,
//! events, histograms. This crate answers the domain questions those
//! primitives cannot: **did the CDN remap clients mid-run**, **how fast
//! are ratio maps drifting**, and **is the clustering churning** — the
//! silent failure modes §V of the paper warns about (probe-interval and
//! window-size sensitivity) and that YouLighter detects in the wild from
//! clustering snapshots alone.
//!
//! Three modules:
//!
//! * [`drift`] — re-interprets a [`CrpService`]'s observation history at
//!   a ladder of SimTimes *after* the campaign, diffing consecutive
//!   snapshots: per-host L1 / cosine distance between ratio maps,
//!   strongest-replica changes (remap events), and YouLighter-style
//!   clustering distance. Emits `drift.*` telemetry events and returns a
//!   serializable [`DriftTimeline`].
//! * [`detect`] — the online layer above [`drift`]: a streaming
//!   [`ChangeDetector`] that turns per-window, per-scope drift signals
//!   into localized [`DetectedChange`] records (onset SimTime, affected
//!   region/replica set, change-class taxonomy) with EWMA baselines,
//!   warmup, and cooldowns for false-alarm control. The [`detect::scan`]
//!   driver replays a recorded history through the detector and feeds
//!   `detect.*` series to the crp-telemetry alert engine.
//! * [`report`] — health verdicts ([`HealthVerdict`]) that the
//!   `audit_report` generator in crp-eval joins with provenance records,
//!   telemetry summaries, and bench baselines into
//!   `results/audit_report.json`.
//!
//! Everything here is an observer over an already-recorded history:
//! drift scanning never mutates the service and is keyed exclusively by
//! [`SimTime`](crp_netsim::SimTime), so the audit layer can never
//! perturb seeded experiment outputs (the workspace determinism tests
//! prove it).
//!
//! [`CrpService`]: crp_core::CrpService
//! [`DriftTimeline`]: drift::DriftTimeline
//! [`ChangeDetector`]: detect::ChangeDetector
//! [`DetectedChange`]: detect::DetectedChange
//! [`HealthVerdict`]: report::HealthVerdict

pub mod detect;
pub mod drift;
pub mod report;

pub use detect::{
    ChangeClass, ChangeDetector, DetectConfig, DetectWindow, DetectedChange, DetectionReport,
    GroupWindow,
};
pub use drift::{DriftConfig, DriftTimeline, DriftWindow, RemapEvent};
pub use report::HealthVerdict;
