//! Run-health verdicts for the audit report.
//!
//! The `audit_report` generator in crp-eval joins drift timelines,
//! provenance records, telemetry summaries, and bench baselines into
//! `results/audit_report.json`; the verdict logic — what counts as
//! healthy — lives here so it is unit-testable without the file
//! plumbing. Three verdicts, matching the failure modes the audit layer
//! exists to catch:
//!
//! * **drift-within-bounds** — no window drifted more of the population
//!   than the bound allows (detected remap events are *reported*, not
//!   failed: a remap the monitor saw is a remap that can be correlated
//!   with a ranking regression);
//! * **no-unexplained-tail-errors** — every recorded rank inversion in
//!   the selection experiments carries a structural explanation
//!   (no shared replicas, weak signal), up to a small tolerance;
//! * **perf-within-baseline** — the bench report shows no regression
//!   against the committed baseline; absent bench data the verdict
//!   passes as explicitly *skipped*.

use crate::drift::DriftTimeline;
use serde::{Deserialize, Serialize};

/// One named health check with its outcome and a human-readable detail
/// line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HealthVerdict {
    /// Verdict name (`drift-within-bounds`, ...).
    pub name: String,
    /// Whether the check passed.
    pub passed: bool,
    /// What was measured, or why the check was skipped.
    pub detail: String,
}

/// Bench comparison numbers for [`perf_within_baseline`], extracted by
/// the caller from the bench reports.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfOutcome {
    /// Benchmarks present in both baseline and current report.
    pub checked: u64,
    /// Benchmarks whose p50 regressed beyond tolerance.
    pub regressions: u64,
    /// The tolerance applied, in percent.
    pub tolerance_pct: f64,
}

/// Judges every drift timeline against `max_drifted_fraction`: the run
/// is healthy when no window saw more than that fraction of hosts drift
/// past the L1 threshold. `timelines` pairs each experiment name with
/// its timeline; an empty slice passes as skipped (no drift scan ran).
pub fn drift_within_bounds(
    timelines: &[(String, DriftTimeline)],
    max_drifted_fraction: f64,
) -> HealthVerdict {
    if timelines.is_empty() {
        return HealthVerdict {
            name: "drift-within-bounds".to_owned(),
            passed: true,
            detail: "skipped: no drift timelines recorded".to_owned(),
        };
    }
    let mut worst: f64 = 0.0;
    let mut worst_name = "";
    let mut remaps = 0u64;
    for (name, t) in timelines {
        let f = t.max_drifted_fraction();
        if f >= worst {
            worst = f;
            worst_name = name;
        }
        remaps += t.remap_events.len() as u64;
    }
    HealthVerdict {
        name: "drift-within-bounds".to_owned(),
        passed: worst <= max_drifted_fraction,
        detail: format!(
            "max drifted fraction {worst:.3} (bound {max_drifted_fraction:.3}) in {worst_name}; \
             {remaps} remap event(s) detected across {} timeline(s)",
            timelines.len()
        ),
    }
}

/// Judges the recorded rank inversions: healthy when at most
/// `tolerated_fraction` of them lack a structural explanation. With no
/// inversions recorded at all the check passes as skipped.
pub fn no_unexplained_tail_errors(
    unexplained: u64,
    total: u64,
    tolerated_fraction: f64,
) -> HealthVerdict {
    let name = "no-unexplained-tail-errors".to_owned();
    if total == 0 {
        return HealthVerdict {
            name,
            passed: true,
            detail: "skipped: no rank inversions recorded".to_owned(),
        };
    }
    let fraction = unexplained as f64 / total as f64;
    HealthVerdict {
        name,
        passed: fraction <= tolerated_fraction,
        detail: format!(
            "{unexplained}/{total} inversions unexplained ({:.1}%, tolerance {:.1}%)",
            fraction * 100.0,
            tolerated_fraction * 100.0
        ),
    }
}

/// Judges the bench comparison: healthy when no benchmark regressed.
/// `None` means no bench data was available; the verdict passes as
/// explicitly skipped rather than silently.
pub fn perf_within_baseline(outcome: Option<PerfOutcome>) -> HealthVerdict {
    let name = "perf-within-baseline".to_owned();
    match outcome {
        None => HealthVerdict {
            name,
            passed: true,
            detail: "skipped: no bench baseline and current report pair found".to_owned(),
        },
        Some(o) => HealthVerdict {
            name,
            passed: o.regressions == 0,
            detail: format!(
                "{} of {} benchmark(s) regressed beyond {:.0}% of baseline p50",
                o.regressions, o.checked, o.tolerance_pct
            ),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::{DriftWindow, RemapEvent};

    fn timeline(drifted_fraction: f64, remaps: usize) -> DriftTimeline {
        DriftTimeline {
            interval_ms: 3_600_000,
            l1_threshold: 0.5,
            remap_fraction: 0.2,
            snapshots: 2,
            windows: vec![DriftWindow {
                from_ms: 0,
                to_ms: 3_600_000,
                hosts_compared: 10,
                mean_l1: 0.1,
                max_l1: 0.9,
                mean_cosine_distance: 0.05,
                drifted_hosts: (drifted_fraction * 10.0) as u64,
                drifted_fraction,
                strongest_changed: 2,
                strongest_changed_fraction: 0.2,
                cluster_distance: 0.1,
                clusters_from: 3,
                clusters_to: 3,
            }],
            remap_events: (0..remaps)
                .map(|i| RemapEvent {
                    at_ms: 3_600_000 * (i as u64 + 1),
                    strongest_changed_fraction: 0.5,
                    hosts_affected: 5,
                })
                .collect(),
        }
    }

    #[test]
    fn drift_verdict_bounds() {
        let ok = drift_within_bounds(&[("fig4".to_owned(), timeline(0.2, 1))], 0.5);
        assert!(ok.passed, "{ok:?}");
        assert!(ok.detail.contains("1 remap event(s)"));
        let bad = drift_within_bounds(&[("fig4".to_owned(), timeline(0.9, 0))], 0.5);
        assert!(!bad.passed);
        assert!(bad.detail.contains("fig4"));
        let skipped = drift_within_bounds(&[], 0.5);
        assert!(skipped.passed);
        assert!(skipped.detail.starts_with("skipped"));
    }

    #[test]
    fn tail_error_verdict_tolerance() {
        assert!(no_unexplained_tail_errors(0, 100, 0.02).passed);
        assert!(no_unexplained_tail_errors(2, 100, 0.02).passed);
        assert!(!no_unexplained_tail_errors(3, 100, 0.02).passed);
        let skipped = no_unexplained_tail_errors(0, 0, 0.02);
        assert!(skipped.passed);
        assert!(skipped.detail.starts_with("skipped"));
    }

    #[test]
    fn perf_verdict_skip_and_fail() {
        assert!(perf_within_baseline(None).passed);
        assert!(
            perf_within_baseline(Some(PerfOutcome {
                checked: 5,
                regressions: 0,
                tolerance_pct: 20.0,
            }))
            .passed
        );
        let bad = perf_within_baseline(Some(PerfOutcome {
            checked: 5,
            regressions: 2,
            tolerance_pct: 20.0,
        }));
        assert!(!bad.passed);
        assert!(bad.detail.contains("2 of 5"));
    }

    #[test]
    fn verdict_serializes_round_trip() {
        let v = perf_within_baseline(None);
        let text = serde_json::to_string(&v).expect("serialize");
        let value = serde_json::parse(&text).expect("parse");
        assert_eq!(HealthVerdict::from_value(&value).expect("shape"), v);
    }
}
