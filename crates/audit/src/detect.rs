//! Online change detection over ratio-map history.
//!
//! [`drift`](crate::drift) diffs consecutive snapshots and reports raw
//! movement. This module turns that movement into *localized change
//! records*: a [`ChangeDetector`] consumes per-window, per-scope drift
//! statistics as a stream and raises [`DetectedChange`]s — onset time,
//! affected scope (region label or `"global"`), implicated replicas, and
//! a class from a small taxonomy ([`ChangeClass`]) — with EWMA baselines,
//! warmup, and per-(class, scope) cooldowns for false-alarm control.
//! This is the YouLighter framing: unsupervised detection of CDN
//! infrastructure changes from passively observed redirections alone.
//!
//! [`scan`] is the batch driver: it replays a recorded [`CrpService`]
//! history through the detector at a SimTime ladder (read-only,
//! SimTime-keyed — running it cannot perturb experiment output) and
//! returns a serializable [`DetectionReport`]. Per-window signals are
//! emitted as `detect.*` metrics so the crp-telemetry alert engine's
//! default rules can fire on them.

use crate::drift::rand_index;
use crp_core::cluster::{Clustering, SmfConfig};
use crp_core::{CrpService, RatioMap};
use crp_netsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// The change taxonomy a detection is classified into.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ChangeClass {
    /// Many hosts in the scope changed their strongest replica at once —
    /// a remapping wave (pool flip, outage, recovery, flash crowd).
    MassRemap,
    /// The scope's mean ratio-map L1 movement jumped far above its
    /// running baseline without (necessarily) flipping strongest
    /// replicas — redistribution events like load-balancer policy
    /// changes.
    DriftBurst,
    /// Hosts started being served by replicas never seen before in the
    /// whole campaign — footprint growth.
    NewReplicas,
    /// The cluster structure over the population reorganized
    /// (YouLighter's snapshot-distance signal).
    ClusterReshape,
}

impl ChangeClass {
    /// Stable lowercase label used in artifacts and tables.
    pub fn label(self) -> &'static str {
        match self {
            ChangeClass::MassRemap => "mass_remap",
            ChangeClass::DriftBurst => "drift_burst",
            ChangeClass::NewReplicas => "new_replicas",
            ChangeClass::ClusterReshape => "cluster_reshape",
        }
    }
}

/// One raised change.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectedChange {
    /// Window start — the earliest the change can have begun.
    pub onset_ms: u64,
    /// Window end — when the detector raised it.
    pub detected_ms: u64,
    /// Change class.
    pub class: ChangeClass,
    /// `"global"` or a region label supplied with the host list.
    pub scope: String,
    /// Hosts behind the signal (changed hosts for remaps, compared
    /// hosts for drift bursts, adopting hosts for new replicas).
    pub hosts_affected: u64,
    /// The signal value that crossed the threshold.
    pub magnitude: f64,
    /// Implicated replicas (new strongest targets / fresh keys), at
    /// most eight, most-adopted first.
    pub replicas: Vec<String>,
}

/// Per-scope statistics for one window of the stream.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GroupWindow {
    /// `"global"` or a region label.
    pub scope: String,
    /// Hosts with maps at both window edges.
    pub hosts_compared: u64,
    /// Mean per-host L1 distance between the edges.
    pub mean_l1: f64,
    /// Hosts whose strongest replica changed at all (includes tie
    /// flapping between near-equal replicas).
    pub strongest_changed: u64,
    /// `strongest_changed / hosts_compared` (0 when empty).
    pub strongest_changed_fraction: f64,
    /// Hosts whose strongest replica changed *decisively*: the new
    /// strongest outweighs the old one's current ratio by the config
    /// margin. Rotation flapping between near-ties does not count;
    /// an outage or pool flip (old replica's ratio decaying toward
    /// zero) does.
    pub decisive_changed: u64,
    /// `decisive_changed / hosts_compared` (0 when empty).
    pub decisive_changed_fraction: f64,
    /// Hosts carrying a *substantially adopted* never-seen replica key
    /// (ratio at or above the config adoption weight). Rotation-tail
    /// first sightings with near-zero ratio do not count.
    pub fresh_replica_hosts: u64,
    /// Mean ratio-map support (distinct replica keys per host) at the
    /// window end — the signal for load-balance policy width changes.
    pub mean_support: f64,
    /// Mean ratio-map support at the (lagged) window start. The
    /// support comparison is lagged rather than EWMA-tracked so a
    /// permanent width change self-clears once the lag passes over it.
    pub prev_support: f64,
    /// The EWMA L1 baseline the detector held when evaluating this
    /// window (0 until initialized).
    pub baseline_l1: f64,
    /// Top new-strongest replica keys among decisively changed hosts
    /// (≤ 8).
    pub changed_to: Vec<String>,
    /// Never-before-seen replica keys that appeared (≤ 8).
    pub fresh_keys: Vec<String>,
}

/// One window of the detection stream: the global group plus per-region
/// groups, and the clustering distance across the window.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectWindow {
    /// Window start (SimTime ms).
    pub from_ms: u64,
    /// Window end (SimTime ms).
    pub to_ms: u64,
    /// 1 − Rand index between the window-edge clusterings (−1 when
    /// clustering is disabled or under-populated).
    pub cluster_distance: f64,
    /// Group stats: `"global"` first, then region scopes in label
    /// order.
    pub groups: Vec<GroupWindow>,
}

impl DetectWindow {
    /// The stats for `scope`, if present.
    pub fn group(&self, scope: &str) -> Option<&GroupWindow> {
        self.groups.iter().find(|g| g.scope == scope)
    }
}

/// Full output of a detection scan.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// Window spacing (SimTime ms).
    pub interval_ms: u64,
    /// Number of snapshots taken.
    pub snapshots: u64,
    /// Every window's stream statistics, in time order.
    pub windows: Vec<DetectWindow>,
    /// Every change raised, in time order.
    pub changes: Vec<DetectedChange>,
}

impl DetectionReport {
    /// Changes of one class.
    pub fn of_class(&self, class: ChangeClass) -> impl Iterator<Item = &DetectedChange> {
        self.changes.iter().filter(move |c| c.class == class)
    }
}

/// Detector thresholds and scan schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectConfig {
    /// First snapshot time.
    pub start: SimTime,
    /// Last snapshot time (inclusive).
    pub end: SimTime,
    /// Snapshot spacing.
    pub interval: SimDuration,
    /// Decisive-changed fraction at which a scope raises
    /// [`ChangeClass::MassRemap`].
    pub remap_fraction: f64,
    /// Ratio margin by which a new strongest replica must outweigh the
    /// old one (in the *current* map) for a host to count as
    /// decisively remapped. Filters rotation flapping between
    /// near-tied replicas.
    pub remap_margin: f64,
    /// Ratio below which the displaced leader must have fallen in the
    /// current map for the switch to count as decisive. Real
    /// infrastructure events pull the old replica out of the answer
    /// set entirely; flapping keeps both leaders in rotation.
    pub remap_collapse: f64,
    /// Minimum compared hosts for a scope to be judged at all.
    pub min_hosts: u64,
    /// Mean-L1 multiple of the EWMA baseline at which a scope raises
    /// [`ChangeClass::DriftBurst`].
    pub drift_ratio: f64,
    /// Absolute mean-L1 floor for a drift burst (suppresses bursts on
    /// near-zero baselines).
    pub drift_floor: f64,
    /// Relative shift of mean ratio-map support across the lagged
    /// comparison at which a scope raises [`ChangeClass::DriftBurst`]
    /// — the redistribution signal for load-balance pool-width
    /// changes, which move little probability mass per window but
    /// change the answer support of every map.
    pub support_ratio: f64,
    /// EWMA weight of the newest window in the baseline.
    pub ewma_alpha: f64,
    /// Windows consumed before any detection may fire (baseline
    /// formation).
    pub warmup_windows: u64,
    /// Windows a `(class, scope)` stays silent after raising.
    pub cooldown_windows: u64,
    /// Hosts substantially adopting never-seen replicas at which
    /// [`ChangeClass::NewReplicas`] fires.
    pub fresh_hosts: u64,
    /// Minimum ratio a never-seen key must reach in a host's map for
    /// that host to count as adopting it. Filters rotation-tail first
    /// sightings.
    pub fresh_weight: f64,
    /// Snapshot lag each window compares across: window `i` pairs
    /// snapshot `i - lag_windows` (clamped to the first) with snapshot
    /// `i`. A step change that the probe window smears over several
    /// intervals accumulates back into one comparison when the lag
    /// spans the smear; `1` compares consecutive snapshots.
    pub lag_windows: u64,
    /// Cluster distance at which [`ChangeClass::ClusterReshape`] fires.
    pub churn_threshold: f64,
    /// Clustering for the churn signal; `None` skips the (quadratic)
    /// clustering pass.
    pub smf: Option<SmfConfig>,
}

impl DetectConfig {
    /// A scan of `[start, end]` at `interval` with the default
    /// thresholds, calibrated on the standard event suite so that every
    /// scripted event is detected with zero false alarms under natural
    /// network dynamics (route epochs, diurnal swing, measurement
    /// noise). Clustering is off by default; enable it to also raise
    /// [`ChangeClass::ClusterReshape`].
    pub fn new(start: SimTime, end: SimTime, interval: SimDuration) -> Self {
        DetectConfig {
            start,
            end,
            interval,
            remap_fraction: 0.25,
            remap_margin: 0.25,
            remap_collapse: 0.1,
            min_hosts: 6,
            drift_ratio: 2.5,
            drift_floor: 0.4,
            support_ratio: 0.25,
            ewma_alpha: 0.3,
            warmup_windows: 9,
            cooldown_windows: 4,
            fresh_hosts: 4,
            fresh_weight: 0.25,
            lag_windows: 4,
            churn_threshold: 0.45,
            smf: None,
        }
    }

    fn validate(&self) {
        assert!(self.end > self.start, "detect scan needs end > start");
        assert!(
            self.interval.as_millis() > 0,
            "detect scan needs a positive interval"
        );
        assert!(
            self.remap_fraction > 0.0 && self.remap_fraction <= 1.0,
            "remap fraction must be in (0, 1]"
        );
        assert!(
            self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0,
            "EWMA alpha must be in (0, 1]"
        );
        assert!(
            self.drift_ratio >= 1.0,
            "drift ratio must be at least 1 (a burst is *above* baseline)"
        );
        assert!(
            (0.0..1.0).contains(&self.remap_margin)
                && (0.0..=1.0).contains(&self.remap_collapse)
                && (0.0..1.0).contains(&self.fresh_weight),
            "remap margin, collapse, and fresh weight are ratios in [0, 1]"
        );
        assert!(
            self.drift_floor >= 0.0 && self.churn_threshold >= 0.0 && self.support_ratio >= 0.0,
            "thresholds must be non-negative"
        );
        assert!(self.lag_windows >= 1, "lag must span at least one window");
    }
}

/// The streaming core: push windows, collect raised changes.
///
/// State is per-scope EWMA baselines plus per-(class, scope) cooldowns;
/// everything is deterministic in the input stream.
#[derive(Clone, Debug)]
pub struct ChangeDetector {
    cfg: DetectConfig,
    baselines: BTreeMap<String, f64>,
    cooldowns: BTreeMap<(ChangeClass, String), u64>,
    windows_seen: u64,
}

impl ChangeDetector {
    /// A detector with `cfg`'s thresholds.
    pub fn new(cfg: &DetectConfig) -> Self {
        cfg.validate();
        ChangeDetector {
            cfg: cfg.clone(),
            baselines: BTreeMap::new(),
            cooldowns: BTreeMap::new(),
            windows_seen: 0,
        }
    }

    /// Windows consumed so far.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// The current EWMA L1 baseline for `scope`, if formed.
    pub fn baseline(&self, scope: &str) -> Option<f64> {
        self.baselines.get(scope).copied()
    }

    fn in_cooldown(&self, class: ChangeClass, scope: &str) -> bool {
        self.cooldowns
            .get(&(class, scope.to_owned()))
            .is_some_and(|left| *left > 0)
    }

    fn arm_cooldown(&mut self, class: ChangeClass, scope: &str) {
        self.cooldowns
            .insert((class, scope.to_owned()), self.cfg.cooldown_windows);
    }

    /// Consumes one window of the stream and returns the changes it
    /// raises, deterministically ordered (global first, then scopes in
    /// label order, classes in taxonomy order).
    pub fn push(&mut self, window: &DetectWindow) -> Vec<DetectedChange> {
        self.windows_seen += 1;
        let warm = self.windows_seen > self.cfg.warmup_windows;
        for left in self.cooldowns.values_mut() {
            *left = left.saturating_sub(1);
        }
        let mut raised = Vec::new();

        // A scope-wide signal subsumes its regional echoes: when the
        // global group crosses a threshold, only the global change is
        // raised for that class.
        let global_remap = window
            .group("global")
            .is_some_and(|g| self.remap_condition(g));
        let global_burst = window
            .group("global")
            .is_some_and(|g| self.burst_condition(g));
        // NewReplicas goes the other way: fresh keys are inherently
        // localized (a footprint grows *somewhere*), so a regional
        // detection subsumes the global echo, not vice versa.
        let regional_fresh = window
            .groups
            .iter()
            .any(|g| g.scope != "global" && self.fresh_condition(g));

        for group in &window.groups {
            let is_global = group.scope == "global";
            let remap = self.remap_condition(group);
            let burst = self.burst_condition(group);
            let fresh = self.fresh_condition(group);
            if remap && (is_global || !global_remap) {
                self.raise(
                    &mut raised,
                    warm,
                    window,
                    group,
                    ChangeClass::MassRemap,
                    group.decisive_changed,
                    group.decisive_changed_fraction,
                    group.changed_to.clone(),
                );
            }
            if burst && (is_global || !global_burst) {
                self.raise(
                    &mut raised,
                    warm,
                    window,
                    group,
                    ChangeClass::DriftBurst,
                    group.hosts_compared,
                    group.mean_l1,
                    Vec::new(),
                );
            }
            if fresh && (!is_global || !regional_fresh) {
                self.raise(
                    &mut raised,
                    warm,
                    window,
                    group,
                    ChangeClass::NewReplicas,
                    group.fresh_replica_hosts,
                    group.fresh_replica_hosts as f64,
                    group.fresh_keys.clone(),
                );
            }
            // Baseline update: quiet windows track the scope's natural
            // movement. A window whose anomaly is still *unreported*
            // (condition holds, no cooldown armed yet) freezes the
            // baseline so the event is not absorbed into "normal";
            // once reported, the EWMA resumes and adopts the new
            // regime during the cooldown.
            let remap_pending = remap && !self.in_cooldown(ChangeClass::MassRemap, &group.scope);
            let burst_pending = burst && !self.in_cooldown(ChangeClass::DriftBurst, &group.scope);
            if !remap_pending && !burst_pending {
                let alpha = self.cfg.ewma_alpha;
                let baseline = self
                    .baselines
                    .entry(group.scope.clone())
                    .or_insert(group.mean_l1);
                *baseline = alpha * group.mean_l1 + (1.0 - alpha) * *baseline;
            }
        }

        // A raised global remap or burst is a regime change for every
        // region: cool down and re-baseline all scopes for that class
        // so the regional echoes of the same event do not fire again
        // once the global signal has settled.
        let global_classes: Vec<ChangeClass> = raised
            .iter()
            .filter(|c| {
                c.scope == "global"
                    && matches!(c.class, ChangeClass::MassRemap | ChangeClass::DriftBurst)
            })
            .map(|c| c.class)
            .collect();
        for class in global_classes {
            for group in &window.groups {
                self.arm_cooldown(class, &group.scope);
                self.baselines.insert(group.scope.clone(), group.mean_l1);
            }
        }

        if window.cluster_distance >= self.cfg.churn_threshold
            && window.cluster_distance >= 0.0
            && warm
            && !self.in_cooldown(ChangeClass::ClusterReshape, "global")
        {
            self.arm_cooldown(ChangeClass::ClusterReshape, "global");
            let hosts = window.group("global").map_or(0, |g| g.hosts_compared);
            raised.push(DetectedChange {
                onset_ms: window.from_ms,
                detected_ms: window.to_ms,
                class: ChangeClass::ClusterReshape,
                scope: "global".to_owned(),
                hosts_affected: hosts,
                magnitude: window.cluster_distance,
                replicas: Vec::new(),
            });
        }
        raised
    }

    fn remap_condition(&self, g: &GroupWindow) -> bool {
        g.hosts_compared >= self.cfg.min_hosts
            && g.decisive_changed_fraction >= self.cfg.remap_fraction
    }

    fn burst_condition(&self, g: &GroupWindow) -> bool {
        if g.hosts_compared < self.cfg.min_hosts {
            return false;
        }
        // Level shift: the window's mean L1 movement far exceeds the
        // scope's quiet-time EWMA baseline.
        let level = self.baselines.get(&g.scope).is_some_and(|baseline| {
            g.mean_l1 >= self.cfg.drift_floor && g.mean_l1 >= self.cfg.drift_ratio * baseline
        });
        // Support shift: the mean number of distinct replicas per
        // ratio map jumps across the lagged comparison. A wider (or
        // narrower) load-balancer pool redistributes mass across more
        // (or fewer) keys without necessarily moving the strongest
        // entry, so L1 alone misses it. Pool width is a CDN-wide
        // policy, so the signal is judged on the global scope only —
        // per-region support flaps naturally as hosts near the
        // coverage boundary switch between load-balanced and
        // scattered answer modes.
        let support = g.scope == "global"
            && g.prev_support > 0.0
            && (g.mean_support - g.prev_support).abs() / g.prev_support >= self.cfg.support_ratio;
        level || support
    }

    fn fresh_condition(&self, g: &GroupWindow) -> bool {
        g.fresh_replica_hosts >= self.cfg.fresh_hosts
    }

    #[allow(clippy::too_many_arguments)]
    fn raise(
        &mut self,
        raised: &mut Vec<DetectedChange>,
        warm: bool,
        window: &DetectWindow,
        group: &GroupWindow,
        class: ChangeClass,
        hosts: u64,
        magnitude: f64,
        replicas: Vec<String>,
    ) {
        // The condition held, so the baseline freezes either way; the
        // record is only emitted when warm and out of cooldown.
        if !warm || self.in_cooldown(class, &group.scope) {
            return;
        }
        self.arm_cooldown(class, &group.scope);
        // Re-baseline to the new regime: a permanent step (a narrowed
        // load-balance pool, a flipped replica set) becomes the new
        // normal once reported, instead of re-firing every time the
        // cooldown expires against a forever-frozen baseline.
        self.baselines.insert(group.scope.clone(), group.mean_l1);
        raised.push(DetectedChange {
            onset_ms: window.from_ms,
            detected_ms: window.to_ms,
            class,
            scope: group.scope.clone(),
            hosts_affected: hosts,
            magnitude,
            replicas,
        });
    }
}

/// Replays `service`'s recorded history through a [`ChangeDetector`].
///
/// `hosts` pairs each host with its scope label (typically the region
/// slug); per-window statistics are computed for every scope plus a
/// synthetic `"global"` scope over all hosts. The scan is read-only and
/// SimTime-keyed. Per-window `detect.*` metrics and per-change
/// `detect.change` events are emitted when telemetry is collecting.
///
/// # Panics
///
/// Panics if the config is degenerate (see [`DetectConfig`] field
/// ranges).
pub fn scan<N, K>(
    service: &CrpService<N, K>,
    hosts: &[(N, String)],
    cfg: &DetectConfig,
) -> DetectionReport
where
    N: Ord + Clone + Debug,
    K: Ord + Clone + Debug,
{
    crp_telemetry::profile_scope!("audit.detect_scan");
    crp_telemetry::mem_domain!("audit.detect");
    cfg.validate();
    let mut times: Vec<SimTime> = cfg.start.iter_until(cfg.end, cfg.interval).collect();
    if times.last() != Some(&cfg.end) {
        times.push(cfg.end);
    }

    struct Snapshot<N: Ord, K: Ord> {
        at: SimTime,
        maps: BTreeMap<N, RatioMap<K>>,
        clustering: Option<Clustering<N>>,
    }

    let snapshots: Vec<Snapshot<N, K>> = times
        .iter()
        .map(|&t| Snapshot {
            at: t,
            maps: hosts
                .iter()
                .filter_map(|(h, _)| service.ratio_map(h, t).ok().map(|m| (h.clone(), m)))
                .collect(),
            clustering: cfg.smf.as_ref().map(|smf| service.cluster(smf, t)),
        })
        .collect();

    // Keys present in the first snapshot are the known world; anything
    // appearing later is "fresh" from its first sighting until the
    // comparison lag has passed over it, so its adoption (which the
    // probe window smears over several intervals) is observable at
    // substantial weight before freshness expires.
    let mut first_seen: BTreeMap<K, usize> = snapshots
        .first()
        .map(|s| {
            s.maps
                .values()
                .flat_map(|m| m.iter().map(|(k, _)| (k.clone(), 0)))
                .collect()
        })
        .unwrap_or_default();

    let scopes: BTreeSet<&String> = hosts.iter().map(|(_, scope)| scope).collect();
    let mut detector = ChangeDetector::new(cfg);
    let mut windows = Vec::with_capacity(snapshots.len().saturating_sub(1));
    let mut changes: Vec<DetectedChange> = Vec::new();

    let lag = cfg.lag_windows.max(1) as usize;
    for i in 1..snapshots.len() {
        // Lagged pairing: the comparison spans up to `lag` intervals so
        // a step the probe window smears across snapshots accumulates
        // back into one window's statistics.
        let (prev, next) = (&snapshots[i.saturating_sub(lag)], &snapshots[i]);
        for k in next.maps.values().flat_map(|m| m.iter().map(|(k, _)| k)) {
            first_seen.entry(k.clone()).or_insert(i);
        }
        let fresh_now: BTreeSet<K> = next
            .maps
            .values()
            .flat_map(|m| m.iter().map(|(k, _)| k.clone()))
            .filter(|k| {
                let first = first_seen[k];
                first > 0 && i - first < lag
            })
            .collect();

        let mut groups = Vec::with_capacity(scopes.len() + 1);
        groups.push(group_stats(
            "global",
            hosts.iter().map(|(h, _)| h),
            &prev.maps,
            &next.maps,
            &fresh_now,
            &detector,
        ));
        for scope in &scopes {
            groups.push(group_stats(
                scope,
                hosts.iter().filter(|(_, s)| &s == scope).map(|(h, _)| h),
                &prev.maps,
                &next.maps,
                &fresh_now,
                &detector,
            ));
        }

        let common: Vec<N> = prev
            .maps
            .keys()
            .filter(|h| next.maps.contains_key(*h))
            .cloned()
            .collect();
        let cluster_distance = match (&prev.clustering, &next.clustering) {
            (Some(c0), Some(c1)) if common.len() >= 2 => 1.0 - rand_index(c0, c1, &common),
            _ => -1.0,
        };

        let window = DetectWindow {
            from_ms: prev.at.as_millis(),
            to_ms: next.at.as_millis(),
            cluster_distance,
            groups,
        };

        let raised = detector.push(&window);
        if let Some(global) = window.group("global") {
            crp_telemetry::observe_at(
                window.to_ms,
                "detect.remap_fraction",
                global.strongest_changed_fraction,
            );
            crp_telemetry::observe_at(window.to_ms, "detect.drift_level", global.mean_l1);
        }
        crp_telemetry::observe_at(window.to_ms, "detect.changes_raised", raised.len() as f64);
        crp_telemetry::counter_add("audit.detect.windows", 1);
        for change in &raised {
            crp_telemetry::counter_add("audit.detect.changes", 1);
            if crp_telemetry::enabled() {
                crp_telemetry::event(
                    change.detected_ms,
                    "detect.change",
                    &[
                        ("class", change.class.label().into()),
                        ("scope", change.scope.clone().into()),
                        ("hosts", change.hosts_affected.into()),
                        ("magnitude", change.magnitude.into()),
                    ],
                );
            }
        }
        changes.extend(raised);
        windows.push(window);
    }

    DetectionReport {
        interval_ms: cfg.interval.as_millis(),
        snapshots: snapshots.len() as u64,
        windows,
        changes,
    }
}

/// Builds one scope's window statistics. Free function (not a closure)
/// so the snapshot borrows stay simple.
fn group_stats<'a, N, K>(
    scope: &str,
    members: impl Iterator<Item = &'a N>,
    prev_maps: &'a BTreeMap<N, RatioMap<K>>,
    next_maps: &'a BTreeMap<N, RatioMap<K>>,
    fresh_now: &BTreeSet<K>,
    detector: &ChangeDetector,
) -> GroupWindow
where
    N: Ord + Clone + Debug + 'a,
    K: Ord + Clone + Debug,
{
    let margin = detector.cfg.remap_margin;
    let collapse = detector.cfg.remap_collapse;
    let fresh_weight = detector.cfg.fresh_weight;
    let mut compared = 0u64;
    let mut l1_sum = 0.0;
    let mut support_sum = 0u64;
    let mut prev_support_sum = 0u64;
    let mut changed = 0u64;
    let mut decisive = 0u64;
    let mut fresh_hosts = 0u64;
    let mut destinations: BTreeMap<&K, u64> = BTreeMap::new();
    for host in members {
        let (Some(m0), Some(m1)) = (prev_maps.get(host), next_maps.get(host)) else {
            continue;
        };
        compared += 1;
        l1_sum += m0.l1_distance(m1);
        support_sum += m1.len() as u64;
        prev_support_sum += m0.len() as u64;
        let old_strongest = m0.strongest().0;
        let new_strongest = m1.strongest().0;
        if old_strongest != new_strongest {
            changed += 1;
            // A switch is decisive only when the new leader outweighs
            // the old leader's *current* ratio by a margin AND the old
            // leader has all but left the answer set. Real events pull
            // the displaced replica's share toward zero; rotation
            // flapping swaps near-equal leaders that both stay in
            // rotation, and fails one of the two tests.
            let old_now = m1.get(old_strongest);
            if m1.get(new_strongest) - old_now >= margin && old_now <= collapse {
                decisive += 1;
                *destinations.entry(new_strongest).or_insert(0) += 1;
            }
        }
        // A never-before-seen key marks the host only once it carries
        // substantial mass; single rotation-tail sightings don't.
        if m1
            .iter()
            .any(|(k, v)| v >= fresh_weight && fresh_now.contains(k))
        {
            fresh_hosts += 1;
        }
    }
    let mut top: Vec<(&K, u64)> = destinations.into_iter().collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let frac = |n: u64| {
        if compared == 0 {
            0.0
        } else {
            n as f64 / compared as f64
        }
    };
    GroupWindow {
        scope: scope.to_owned(),
        hosts_compared: compared,
        mean_l1: if compared == 0 {
            0.0
        } else {
            l1_sum / compared as f64
        },
        strongest_changed: changed,
        strongest_changed_fraction: frac(changed),
        decisive_changed: decisive,
        decisive_changed_fraction: frac(decisive),
        fresh_replica_hosts: fresh_hosts,
        mean_support: if compared == 0 {
            0.0
        } else {
            support_sum as f64 / compared as f64
        },
        baseline_l1: detector.baseline(scope).unwrap_or(0.0),
        prev_support: if compared == 0 {
            0.0
        } else {
            prev_support_sum as f64 / compared as f64
        },
        changed_to: top.iter().take(8).map(|(k, _)| format!("{k:?}")).collect(),
        fresh_keys: fresh_now.iter().take(8).map(|k| format!("{k:?}")).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_core::{SimilarityMetric, WindowPolicy};

    fn hour(h: u64) -> SimTime {
        SimTime::from_hours(h)
    }

    fn cfg() -> DetectConfig {
        let mut c = DetectConfig::new(hour(0), hour(12), SimDuration::from_hours(1));
        c.min_hosts = 2;
        c.fresh_hosts = 2;
        // Short fixtures: only 12 windows, so a short warmup; and the
        // 3-of-11 regional fixtures rely on the global fraction staying
        // below threshold so detections localize.
        c.warmup_windows = 3;
        c.remap_fraction = 0.3;
        // Consecutive snapshots: these fixtures flip within one
        // interval, so the tests pin exact onset/detection times.
        c.lag_windows = 1;
        c
    }

    /// Hosts in two scopes; scope "east" flips strongest replica at
    /// hour 8, scope "west" stays put.
    fn service_with_regional_flip() -> (
        CrpService<&'static str, &'static str>,
        Vec<(&'static str, String)>,
    ) {
        let mut svc = CrpService::new(WindowPolicy::LastProbes(4), SimilarityMetric::Cosine);
        let east = ["e1", "e2", "e3"];
        // A quiet majority keeps the global strongest-changed fraction
        // below threshold, so the detection must localize to "east".
        let west = ["w1", "w2", "w3", "w4", "w5", "w6", "w7", "w8"];
        for m in 0..72u64 {
            let t = SimTime::from_mins(m * 10);
            let flipped = t >= hour(8);
            for h in east {
                svc.record(h, t, vec![if flipped { "r-new" } else { "r-east" }]);
            }
            for h in west {
                svc.record(h, t, vec!["r-west"]);
            }
        }
        let mut hosts: Vec<(&'static str, String)> = Vec::new();
        hosts.extend(east.map(|h| (h, "east".to_owned())));
        hosts.extend(west.map(|h| (h, "west".to_owned())));
        (svc, hosts)
    }

    #[test]
    fn regional_flip_is_detected_and_localized() {
        let (svc, hosts) = service_with_regional_flip();
        let report = scan(&svc, &hosts, &cfg());
        let remaps: Vec<_> = report.of_class(ChangeClass::MassRemap).collect();
        assert!(!remaps.is_empty(), "{report:?}");
        // Localized to the east scope, at the hour-8→9 window, pointing
        // at the new replica.
        let hit = remaps[0];
        assert_eq!(hit.scope, "east");
        assert_eq!(hit.onset_ms, hour(8).as_millis());
        assert_eq!(hit.detected_ms, hour(9).as_millis());
        assert_eq!(hit.hosts_affected, 3);
        assert!(hit.replicas.iter().any(|r| r.contains("r-new")), "{hit:?}");
        // No detection blames the quiet west scope.
        assert!(report.changes.iter().all(|c| c.scope != "west"));
        // The flip also surfaces fresh keys ("r-new" was never seen).
        let fresh: Vec<_> = report.of_class(ChangeClass::NewReplicas).collect();
        assert!(!fresh.is_empty());
        assert_eq!(fresh[0].scope, "east");
    }

    #[test]
    fn stable_history_raises_nothing() {
        let mut svc = CrpService::new(WindowPolicy::LastProbes(4), SimilarityMetric::Cosine);
        for h in ["a", "b", "c"] {
            for m in 0..72u64 {
                svc.record(h, SimTime::from_mins(m * 10), vec!["r1"]);
            }
        }
        let hosts: Vec<(&str, String)> = ["a", "b", "c"]
            .iter()
            .map(|h| (*h, "east".to_owned()))
            .collect();
        let report = scan(&svc, &hosts, &cfg());
        assert!(report.changes.is_empty(), "{:?}", report.changes);
        assert_eq!(report.windows.len() as u64, report.snapshots - 1);
    }

    #[test]
    fn warmup_suppresses_initial_transient() {
        // The flip happens inside the warmup window: nothing may fire.
        let mut svc = CrpService::new(WindowPolicy::LastProbes(4), SimilarityMetric::Cosine);
        for h in ["a", "b", "c"] {
            for m in 0..72u64 {
                let t = SimTime::from_mins(m * 10);
                let replica = if t >= hour(1) { "r2" } else { "r1" };
                svc.record(h, t, vec![replica]);
            }
        }
        let hosts: Vec<(&str, String)> = ["a", "b", "c"]
            .iter()
            .map(|h| (*h, "east".to_owned()))
            .collect();
        let report = scan(&svc, &hosts, &cfg());
        assert!(
            report.of_class(ChangeClass::MassRemap).next().is_none(),
            "{:?}",
            report.changes
        );
    }

    #[test]
    fn cooldown_coalesces_sustained_events() {
        // A flip whose window-policy tail keeps maps moving for several
        // windows raises exactly one MassRemap, not one per window.
        let (svc, hosts) = service_with_regional_flip();
        let mut c = cfg();
        c.cooldown_windows = 4;
        let report = scan(&svc, &hosts, &c);
        assert_eq!(report.of_class(ChangeClass::MassRemap).count(), 1);
    }

    #[test]
    fn detector_stream_matches_batch_scan() {
        // Pushing the report's own windows through a fresh detector
        // reproduces the change list — the batch scan is the stream.
        let (svc, hosts) = service_with_regional_flip();
        let report = scan(&svc, &hosts, &cfg());
        let mut detector = ChangeDetector::new(&cfg());
        let mut replayed = Vec::new();
        for w in &report.windows {
            replayed.extend(detector.push(w));
        }
        assert_eq!(replayed, report.changes);
    }

    #[test]
    fn scan_is_read_only_and_deterministic() {
        let (svc, hosts) = service_with_regional_flip();
        let before = svc.ratio_map(&"e1", hour(12)).unwrap();
        let r1 = scan(&svc, &hosts, &cfg());
        let r2 = scan(&svc, &hosts, &cfg());
        assert_eq!(r1, r2);
        assert_eq!(svc.ratio_map(&"e1", hour(12)).unwrap(), before);
    }

    #[test]
    fn report_round_trips_through_json() {
        let (svc, hosts) = service_with_regional_flip();
        let report = scan(&svc, &hosts, &cfg());
        let text = serde_json::to_string(&report).expect("serialize");
        let value = serde_json::parse(&text).expect("parse");
        let back = DetectionReport::from_value(&value).expect("shape");
        assert_eq!(back, report);
    }

    #[test]
    fn lagged_comparison_accumulates_smeared_step() {
        // Nine hosts flip in three batches an hour apart: consecutive
        // windows each see only a third of the shift, below a 0.5
        // remap fraction, but a lag spanning the smear accumulates the
        // full step into one comparison.
        let mut svc = CrpService::new(WindowPolicy::LastProbes(4), SimilarityMetric::Cosine);
        let hosts: Vec<(String, String)> = (0..9)
            .map(|i| (format!("h{i}"), "east".to_owned()))
            .collect();
        for m in 0..72u64 {
            let t = SimTime::from_mins(m * 10);
            for (i, (h, _)) in hosts.iter().enumerate() {
                let flip_at = hour(6 + i as u64 / 3);
                svc.record(
                    h.clone(),
                    t,
                    vec![if t >= flip_at { "r-new" } else { "r-old" }],
                );
            }
        }
        let mut consecutive = cfg();
        consecutive.remap_fraction = 0.5;
        let mut lagged = consecutive.clone();
        lagged.lag_windows = 3;
        let miss = scan(&svc, &hosts, &consecutive);
        assert!(
            miss.of_class(ChangeClass::MassRemap).next().is_none(),
            "{:?}",
            miss.changes
        );
        let hit = scan(&svc, &hosts, &lagged);
        let remap = hit
            .of_class(ChangeClass::MassRemap)
            .next()
            .unwrap_or_else(|| panic!("{:?}", hit.changes));
        // Every host flipped, so the global group subsumes the echo;
        // it fires at the first window where the accumulated fraction
        // crosses 0.5 (two of the three batches in view).
        assert_eq!(remap.scope, "global");
        assert!(remap.hosts_affected >= 6, "{remap:?}");
    }

    #[test]
    #[should_panic(expected = "end > start")]
    fn degenerate_range_rejected() {
        let svc: CrpService<&str, &str> =
            CrpService::new(WindowPolicy::All, SimilarityMetric::Cosine);
        let c = DetectConfig::new(hour(2), hour(2), SimDuration::from_hours(1));
        let _ = scan(&svc, &[], &c);
    }
}
