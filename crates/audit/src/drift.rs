//! Drift detection over a recorded observation history.
//!
//! The paper's ratio maps are time-varying: the CDN re-ranks replicas
//! every mapping epoch, congestion shifts redirection fractions, and a
//! remapping event can silently invalidate a clustering computed an hour
//! earlier. [`scan`] makes that drift visible: it queries a
//! [`CrpService`] at a ladder of SimTimes (re-interpreting the same
//! recorded history — nothing is re-observed) and diffs consecutive
//! snapshots three ways:
//!
//! * **per-host ratio-map drift** — L1 and cosine distance between a
//!   host's maps in adjacent windows;
//! * **remap events** — the fraction of hosts whose *strongest* replica
//!   mapping changed; past a threshold the window is flagged as a CDN
//!   remapping event;
//! * **cluster churn** — YouLighter-style distance between consecutive
//!   SMF clusterings (1 − Rand index over the common hosts).
//!
//! The scan runs *after* a campaign completes, reads only SimTime-keyed
//! state, and emits `drift.*` telemetry events (when a collector is
//! installed) alongside the returned [`DriftTimeline`].

use crp_core::cluster::{Clustering, SmfConfig};
use crp_core::{CrpService, RatioMap};
use crp_netsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Debug;

/// Configuration of a drift scan.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftConfig {
    /// First snapshot time.
    pub start: SimTime,
    /// Last snapshot time (inclusive; a final snapshot is taken here
    /// even if the ladder does not land on it exactly).
    pub end: SimTime,
    /// Spacing between snapshots.
    pub interval: SimDuration,
    /// L1 distance above which a host counts as *drifted* in a window
    /// (L1 over ratio maps is in `[0, 2]`).
    pub l1_threshold: f64,
    /// Fraction of hosts whose strongest replica changed above which a
    /// window is flagged as a CDN remap event.
    pub remap_fraction: f64,
    /// Clustering to diff for churn; `None` skips the (quadratic)
    /// clustering pass.
    pub smf: Option<SmfConfig>,
}

impl DriftConfig {
    /// A scan of `[start, end]` at `interval`, with the default
    /// thresholds (L1 > 0.5 counts as drifted, 20% strongest-mapping
    /// changes flag a remap) and cluster churn enabled at the paper's
    /// SMF operating point.
    pub fn new(start: SimTime, end: SimTime, interval: SimDuration) -> Self {
        DriftConfig {
            start,
            end,
            interval,
            l1_threshold: 0.5,
            remap_fraction: 0.2,
            smf: Some(SmfConfig::paper(0.1)),
        }
    }

    fn validate(&self) {
        assert!(self.end > self.start, "drift scan needs end > start");
        assert!(
            self.interval.as_millis() > 0,
            "drift scan needs a positive interval"
        );
        assert!(
            self.l1_threshold >= 0.0 && self.remap_fraction >= 0.0,
            "drift thresholds must be non-negative"
        );
    }
}

/// The diff between two consecutive snapshots.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftWindow {
    /// Earlier snapshot time, in SimTime milliseconds.
    pub from_ms: u64,
    /// Later snapshot time, in SimTime milliseconds.
    pub to_ms: u64,
    /// Hosts with a usable ratio map at both snapshot times.
    pub hosts_compared: u64,
    /// Mean per-host L1 distance between the two maps.
    pub mean_l1: f64,
    /// Largest per-host L1 distance.
    pub max_l1: f64,
    /// Mean per-host cosine distance (1 − cosine similarity).
    pub mean_cosine_distance: f64,
    /// Hosts whose L1 distance exceeded the configured threshold.
    pub drifted_hosts: u64,
    /// `drifted_hosts / hosts_compared` (0 when nothing compared).
    pub drifted_fraction: f64,
    /// Hosts whose strongest replica mapping changed.
    pub strongest_changed: u64,
    /// `strongest_changed / hosts_compared` (0 when nothing compared).
    pub strongest_changed_fraction: f64,
    /// YouLighter-style snapshot distance: 1 − Rand index between the
    /// two clusterings over the common hosts. Negative sentinel −1 when
    /// clustering was disabled or had fewer than two common hosts.
    pub cluster_distance: f64,
    /// Multi-member clusters in the earlier snapshot (−1 sentinel
    /// encoded as 0 alongside `cluster_distance < 0`).
    pub clusters_from: u64,
    /// Multi-member clusters in the later snapshot.
    pub clusters_to: u64,
}

/// One detected CDN remapping event.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RemapEvent {
    /// Snapshot time at which the remap was detected (window end).
    pub at_ms: u64,
    /// Fraction of compared hosts whose strongest mapping changed.
    pub strongest_changed_fraction: f64,
    /// Number of hosts affected.
    pub hosts_affected: u64,
}

/// The full drift timeline of one run: every window diff plus the
/// detected remap events, with the thresholds echoed for the report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DriftTimeline {
    /// Snapshot spacing, in SimTime milliseconds.
    pub interval_ms: u64,
    /// The L1 drift threshold in effect.
    pub l1_threshold: f64,
    /// The remap-fraction threshold in effect.
    pub remap_fraction: f64,
    /// Number of snapshots taken.
    pub snapshots: u64,
    /// Consecutive-snapshot diffs, in time order.
    pub windows: Vec<DriftWindow>,
    /// Detected remap events, in time order.
    pub remap_events: Vec<RemapEvent>,
}

impl DriftTimeline {
    /// The largest drifted-host fraction across all windows.
    pub fn max_drifted_fraction(&self) -> f64 {
        self.windows
            .iter()
            .map(|w| w.drifted_fraction)
            .fold(0.0, f64::max)
    }

    /// The largest cluster-churn distance across all windows (0 when
    /// clustering was disabled).
    pub fn max_cluster_distance(&self) -> f64 {
        self.windows
            .iter()
            .map(|w| w.cluster_distance)
            .fold(0.0, f64::max)
    }

    /// Total drift signal: windows with at least one drifted host plus
    /// detected remap events — "did *anything* move this run?".
    pub fn drift_event_count(&self) -> u64 {
        let drifted_windows = self.windows.iter().filter(|w| w.drifted_hosts > 0).count();
        drifted_windows as u64 + self.remap_events.len() as u64
    }
}

/// The Rand index between two clusterings over `nodes`: the fraction of
/// node pairs on which the clusterings agree (together in both, or apart
/// in both). 1 means identical partitions.
pub fn rand_index<N: Ord + Clone>(a: &Clustering<N>, b: &Clustering<N>, nodes: &[N]) -> f64 {
    if nodes.len() < 2 {
        return 1.0;
    }
    fn assignments<N: Ord + Clone>(c: &Clustering<N>) -> BTreeMap<&N, usize> {
        let mut out = BTreeMap::new();
        for (i, cluster) in c.clusters().iter().enumerate() {
            for m in cluster.members() {
                out.insert(m, i);
            }
        }
        out
    }
    let ca = assignments(a);
    let cb = assignments(b);
    let mut agree = 0u64;
    let mut total = 0u64;
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            let (ni, nj) = (&nodes[i], &nodes[j]);
            let (Some(ai), Some(aj), Some(bi), Some(bj)) =
                (ca.get(ni), ca.get(nj), cb.get(ni), cb.get(nj))
            else {
                continue;
            };
            total += 1;
            if (ai == aj) == (bi == bj) {
                agree += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        agree as f64 / total as f64
    }
}

/// Scans `service`'s recorded history for drift over `hosts`.
///
/// Snapshots are taken at `cfg.start`, every `cfg.interval`, and at
/// `cfg.end`; consecutive snapshots are diffed into [`DriftWindow`]s.
/// The scan is read-only and SimTime-keyed: it re-interprets history the
/// service already holds, so running it cannot change any experiment
/// output. `drift.*` telemetry events are emitted when a collector is
/// installed.
///
/// # Panics
///
/// Panics if the config is degenerate (`end <= start`, zero interval, or
/// negative thresholds).
pub fn scan<N, K>(service: &CrpService<N, K>, hosts: &[N], cfg: &DriftConfig) -> DriftTimeline
where
    N: Ord + Clone + Debug,
    K: Ord + Clone + Debug,
{
    crp_telemetry::profile_scope!("audit.drift_scan");
    cfg.validate();
    let mut times: Vec<SimTime> = cfg.start.iter_until(cfg.end, cfg.interval).collect();
    if times.last() != Some(&cfg.end) {
        times.push(cfg.end);
    }

    struct Snapshot<N: Ord, K: Ord> {
        at: SimTime,
        maps: BTreeMap<N, RatioMap<K>>,
        clustering: Option<Clustering<N>>,
    }

    let snapshots: Vec<Snapshot<N, K>> = times
        .iter()
        .map(|&t| {
            let maps: BTreeMap<N, RatioMap<K>> = hosts
                .iter()
                .filter_map(|h| service.ratio_map(h, t).ok().map(|m| (h.clone(), m)))
                .collect();
            let clustering = cfg.smf.as_ref().map(|smf| service.cluster(smf, t));
            // Capacity gauges, sampled at each snapshot boundary so
            // live_report can chart occupancy growth over the scan.
            if crp_telemetry::timeseries::enabled() {
                use crp_telemetry::MemFootprint;
                crp_telemetry::observe_at(
                    t.as_millis(),
                    "mem.footprint.core.service",
                    service.mem_footprint() as f64,
                );
                if let Some(c) = &clustering {
                    crp_telemetry::observe_at(
                        t.as_millis(),
                        "mem.footprint.core.clustering",
                        c.mem_footprint() as f64,
                    );
                }
            }
            Snapshot {
                at: t,
                maps,
                clustering,
            }
        })
        .collect();

    let mut windows = Vec::with_capacity(snapshots.len().saturating_sub(1));
    let mut remap_events = Vec::new();
    for pair in snapshots.windows(2) {
        let (prev, next) = (&pair[0], &pair[1]);
        let mut l1_sum = 0.0;
        let mut max_l1 = 0.0f64;
        let mut cos_sum = 0.0;
        let mut compared = 0u64;
        let mut drifted = 0u64;
        let mut changed = 0u64;
        let mut common: Vec<N> = Vec::new();
        for (host, m0) in &prev.maps {
            let Some(m1) = next.maps.get(host) else {
                continue;
            };
            compared += 1;
            common.push(host.clone());
            let l1 = m0.l1_distance(m1);
            l1_sum += l1;
            max_l1 = max_l1.max(l1);
            cos_sum += 1.0 - m0.cosine_similarity(m1);
            if l1 > cfg.l1_threshold {
                drifted += 1;
            }
            if m0.strongest().0 != m1.strongest().0 {
                changed += 1;
            }
        }
        let frac = |n: u64| {
            if compared == 0 {
                0.0
            } else {
                n as f64 / compared as f64
            }
        };
        let (cluster_distance, clusters_from, clusters_to) =
            match (&prev.clustering, &next.clustering) {
                (Some(c0), Some(c1)) if common.len() >= 2 => (
                    1.0 - rand_index(c0, c1, &common),
                    c0.multi_clusters().count() as u64,
                    c1.multi_clusters().count() as u64,
                ),
                _ => (-1.0, 0, 0),
            };
        let window = DriftWindow {
            from_ms: prev.at.as_millis(),
            to_ms: next.at.as_millis(),
            hosts_compared: compared,
            mean_l1: if compared == 0 {
                0.0
            } else {
                l1_sum / compared as f64
            },
            max_l1,
            mean_cosine_distance: if compared == 0 {
                0.0
            } else {
                cos_sum / compared as f64
            },
            drifted_hosts: drifted,
            drifted_fraction: frac(drifted),
            strongest_changed: changed,
            strongest_changed_fraction: frac(changed),
            cluster_distance,
            clusters_from,
            clusters_to,
        };
        if crp_telemetry::enabled() {
            crp_telemetry::event(
                window.to_ms,
                "drift.window",
                &[
                    ("hosts", window.hosts_compared.into()),
                    ("mean_l1", window.mean_l1.into()),
                    ("drifted_fraction", window.drifted_fraction.into()),
                    (
                        "strongest_changed_fraction",
                        window.strongest_changed_fraction.into(),
                    ),
                    ("cluster_distance", window.cluster_distance.into()),
                ],
            );
        }
        crp_telemetry::counter_add("audit.drift.windows", 1);
        // Feeds the live time-series store so the default
        // ratio-map-drift-rate alert rule has a series to watch.
        crp_telemetry::observe_at(window.to_ms, "audit.ratio_drift.l1", window.mean_l1);
        if compared > 0 && window.strongest_changed_fraction >= cfg.remap_fraction {
            let event = RemapEvent {
                at_ms: window.to_ms,
                strongest_changed_fraction: window.strongest_changed_fraction,
                hosts_affected: changed,
            };
            if crp_telemetry::enabled() {
                crp_telemetry::event(
                    event.at_ms,
                    "drift.remap",
                    &[
                        ("fraction", event.strongest_changed_fraction.into()),
                        ("hosts_affected", event.hosts_affected.into()),
                    ],
                );
            }
            crp_telemetry::counter_add("audit.drift.remap_events", 1);
            remap_events.push(event);
        }
        windows.push(window);
    }

    DriftTimeline {
        interval_ms: cfg.interval.as_millis(),
        l1_threshold: cfg.l1_threshold,
        remap_fraction: cfg.remap_fraction,
        snapshots: snapshots.len() as u64,
        windows,
        remap_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_core::{SimilarityMetric, WindowPolicy};

    /// A service whose hosts all flip their redirection target between
    /// hour 0–2 (replica "r1") and hour 2–4 (replica "r2"), under a
    /// window policy short enough that the flip shows in the maps.
    fn remapping_service() -> CrpService<&'static str, &'static str> {
        let mut svc = CrpService::new(WindowPolicy::LastProbes(4), SimilarityMetric::Cosine);
        for host in ["a", "b", "c"] {
            for m in 0..24 {
                let t = SimTime::from_mins(m * 10);
                let replica = if m < 12 { "r1" } else { "r2" };
                svc.record(host, t, vec![replica]);
            }
        }
        svc
    }

    /// A service with perfectly stable redirections.
    fn stable_service() -> CrpService<&'static str, &'static str> {
        let mut svc = CrpService::new(WindowPolicy::LastProbes(4), SimilarityMetric::Cosine);
        for host in ["a", "b", "c"] {
            for m in 0..24 {
                svc.record(host, SimTime::from_mins(m * 10), vec!["r1"]);
            }
        }
        svc
    }

    fn cfg() -> DriftConfig {
        DriftConfig::new(
            SimTime::from_hours(1),
            SimTime::from_hours(4),
            SimDuration::from_hours(1),
        )
    }

    #[test]
    fn remap_is_detected() {
        let svc = remapping_service();
        let hosts = ["a", "b", "c"];
        let timeline = scan(&svc, &hosts, &cfg());
        assert_eq!(timeline.snapshots, 4);
        assert_eq!(timeline.windows.len(), 3);
        assert!(
            !timeline.remap_events.is_empty(),
            "the wholesale r1→r2 flip must register: {timeline:?}"
        );
        let e = &timeline.remap_events[0];
        assert_eq!(e.hosts_affected, 3);
        assert!((e.strongest_changed_fraction - 1.0).abs() < 1e-12);
        assert!(timeline.max_drifted_fraction() > 0.0);
        assert!(timeline.drift_event_count() >= 1);
    }

    #[test]
    fn stable_history_has_no_events() {
        let svc = stable_service();
        let hosts = ["a", "b", "c"];
        let timeline = scan(&svc, &hosts, &cfg());
        assert!(timeline.remap_events.is_empty(), "{timeline:?}");
        assert_eq!(timeline.max_drifted_fraction(), 0.0);
        assert_eq!(timeline.drift_event_count(), 0);
        for w in &timeline.windows {
            assert_eq!(w.mean_l1, 0.0);
            assert_eq!(w.strongest_changed, 0);
            // Identical snapshots cluster identically: zero churn.
            assert!(w.cluster_distance.abs() < 1e-12, "{w:?}");
        }
    }

    #[test]
    fn scan_is_read_only_and_deterministic() {
        let svc = remapping_service();
        let hosts = ["a", "b", "c"];
        let before = svc.ratio_map(&"a", SimTime::from_hours(4)).unwrap();
        let t1 = scan(&svc, &hosts, &cfg());
        let t2 = scan(&svc, &hosts, &cfg());
        assert_eq!(t1, t2);
        let after = svc.ratio_map(&"a", SimTime::from_hours(4)).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn clustering_pass_can_be_disabled() {
        let svc = remapping_service();
        let hosts = ["a", "b", "c"];
        let mut c = cfg();
        c.smf = None;
        let timeline = scan(&svc, &hosts, &c);
        assert!(timeline.windows.iter().all(|w| w.cluster_distance < 0.0));
    }

    #[test]
    fn rand_index_agrees_with_hand_computation() {
        let a = Clustering::from_groups(vec![vec!["a", "b"], vec!["c"]]);
        let b = Clustering::from_groups(vec![vec!["a"], vec!["b"], vec!["c"]]);
        let nodes = ["a", "b", "c"];
        // Pairs: (a,b) together/apart (disagree), (a,c) apart/apart,
        // (b,c) apart/apart → 2/3 agreement.
        assert!((rand_index(&a, &b, &nodes) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rand_index(&a, &a, &nodes), 1.0);
    }

    #[test]
    fn timeline_serializes_round_trip() {
        let svc = remapping_service();
        let hosts = ["a", "b", "c"];
        let timeline = scan(&svc, &hosts, &cfg());
        let text = serde_json::to_string(&timeline).expect("serialize");
        let value = serde_json::parse(&text).expect("parse");
        let back = DriftTimeline::from_value(&value).expect("shape");
        assert_eq!(back, timeline);
    }

    #[test]
    #[should_panic(expected = "end > start")]
    fn degenerate_range_rejected() {
        let svc = stable_service();
        let c = DriftConfig::new(
            SimTime::from_hours(2),
            SimTime::from_hours(2),
            SimDuration::from_hours(1),
        );
        let _ = scan(&svc, &["a"], &c);
    }
}
