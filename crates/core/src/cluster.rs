//! Strongest-Mappings-First (SMF) clustering (§V-B).
//!
//! SMF groups nodes whose redirection behavior is similar:
//!
//! 1. **Centers, strongest mappings first.** Nodes are processed in
//!    decreasing order of their strongest replica mapping, so the nodes
//!    most decisively attached to a replica server seed the clusters.
//!    Each node computes its cosine similarity to every existing cluster
//!    center and joins the argmax cluster *iff* the similarity exceeds
//!    the threshold `t`; otherwise it is assigned to its own cluster and
//!    becomes a center that later (weaker-mapped) nodes may join.
//! 2. **Second pass (optional).** Singleton clusters are revisited in
//!    random order; each unmerged singleton becomes a candidate center
//!    and absorbs other singletons above the threshold. Under the
//!    strongest-mappings strategy this pass is a no-op (those pairs were
//!    already tested), but with [`CenterStrategy::Random`] — where only
//!    the pre-drawn centers attract members in pass 1 — it is what
//!    rescues unclustered nodes, matching the paper's description.
//!
//! The paper uses `t = 0.1` for its headline results and reports the
//! sensitivity sweep `t ∈ {0.01, 0.1, 0.5}` in Table I.

use crate::ratio::RatioMap;
use crate::similarity::SimilarityMetric;
use crp_netsim::noise;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How the initial cluster centers are chosen.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CenterStrategy {
    /// The paper's rule: per replica server, the node mapping to it most
    /// strongly.
    StrongestMappings,
    /// `count` centers chosen uniformly at random (seeded) — the
    /// baseline the ablation compares against.
    Random {
        /// Number of centers to draw.
        count: usize,
    },
}

/// Configuration of the SMF clustering algorithm.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SmfConfig {
    /// Minimum cosine similarity `t` for a node to join a cluster.
    pub threshold: f64,
    /// Center selection rule.
    pub center_strategy: CenterStrategy,
    /// Whether to run the singleton-merging second pass.
    pub second_pass: bool,
    /// Similarity metric (the paper uses cosine).
    pub metric: SimilarityMetric,
    /// Seed for the randomized steps (second-pass order, random
    /// centers).
    pub seed: u64,
}

impl SmfConfig {
    /// The paper's configuration at a given threshold: strongest-mapping
    /// centers, second pass enabled, cosine similarity.
    pub fn paper(threshold: f64) -> Self {
        SmfConfig {
            threshold,
            center_strategy: CenterStrategy::StrongestMappings,
            second_pass: true,
            metric: SimilarityMetric::Cosine,
            seed: 0,
        }
    }

    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.threshold),
            "threshold must be in [0, 1]"
        );
    }
}

/// One cluster: a designated center plus all members (center included,
/// listed first).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster<N> {
    center: N,
    members: Vec<N>,
}

impl<N: Clone + Eq> Cluster<N> {
    fn singleton(node: N) -> Self {
        Cluster {
            center: node.clone(),
            members: vec![node],
        }
    }

    /// The cluster center.
    pub fn center(&self) -> &N {
        &self.center
    }

    /// All members, center first.
    pub fn members(&self) -> &[N] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the cluster has no members (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether the cluster has at least two members — the paper counts
    /// only such clusters as "clustered".
    pub fn is_multi(&self) -> bool {
        self.members.len() >= 2
    }
}

/// Headline statistics in the shape of the paper's Table I.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterSummary {
    /// Nodes in clusters of size ≥ 2.
    pub nodes_clustered: usize,
    /// Total nodes given to the algorithm.
    pub total_nodes: usize,
    /// Clusters of size ≥ 2.
    pub num_clusters: usize,
    /// Mean size of clusters of size ≥ 2.
    pub mean_size: f64,
    /// Median size of clusters of size ≥ 2.
    pub median_size: f64,
    /// Largest cluster size.
    pub max_size: usize,
}

impl ClusterSummary {
    /// Fraction of nodes clustered, in `[0, 1]`.
    pub fn fraction_clustered(&self) -> f64 {
        if self.total_nodes == 0 {
            0.0
        } else {
            self.nodes_clustered as f64 / self.total_nodes as f64
        }
    }
}

/// A partition of nodes into clusters (singletons included).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering<N> {
    clusters: Vec<Cluster<N>>,
}

impl<N: Ord + Clone> Clustering<N> {
    /// Builds a clustering from explicit member groups (used by baseline
    /// algorithms such as ASN clustering). The first member of each
    /// group is its center.
    ///
    /// # Panics
    ///
    /// Panics if any group is empty or a node appears in two groups.
    pub fn from_groups<I, G>(groups: I) -> Self
    where
        I: IntoIterator<Item = G>,
        G: IntoIterator<Item = N>,
    {
        let mut seen = BTreeSet::new();
        let mut clusters = Vec::new();
        for group in groups {
            let members: Vec<N> = group.into_iter().collect();
            assert!(!members.is_empty(), "cluster groups must be non-empty");
            for m in &members {
                assert!(seen.insert(m.clone()), "node appears in two clusters");
            }
            clusters.push(Cluster {
                center: members[0].clone(),
                members,
            });
        }
        Clustering { clusters }
    }

    /// All clusters, singletons included.
    pub fn clusters(&self) -> &[Cluster<N>] {
        &self.clusters
    }

    /// Clusters with at least two members.
    pub fn multi_clusters(&self) -> impl Iterator<Item = &Cluster<N>> {
        self.clusters.iter().filter(|c| c.is_multi())
    }

    /// Number of singleton clusters (unclustered nodes).
    pub fn singleton_count(&self) -> usize {
        self.clusters.iter().filter(|c| !c.is_multi()).count()
    }

    /// Total number of nodes across all clusters.
    pub fn total_nodes(&self) -> usize {
        self.clusters.iter().map(Cluster::len).sum()
    }

    /// Index of the cluster containing `node`, if any.
    pub fn cluster_of(&self, node: &N) -> Option<usize> {
        self.clusters.iter().position(|c| c.members.contains(node))
    }

    /// Nodes sharing a cluster with `node` (excluding `node` itself) —
    /// the "find my cluster peers" query from §IV-B.
    pub fn peers_of(&self, node: &N) -> Vec<&N> {
        match self.cluster_of(node) {
            Some(i) => self.clusters[i]
                .members
                .iter()
                .filter(|m| *m != node)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Up to `n` nodes drawn from *distinct* clusters — the
    /// fault-independence query from §IV-B (nodes in different clusters
    /// are in different parts of the network with high probability).
    /// Larger clusters are preferred as sources.
    pub fn representatives(&self, n: usize) -> Vec<&N> {
        let mut order: Vec<&Cluster<N>> = self.clusters.iter().collect();
        order.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.center.cmp(&b.center)));
        order.into_iter().take(n).map(|c| &c.center).collect()
    }

    /// Table-I-style summary statistics.
    pub fn summary(&self) -> ClusterSummary {
        let mut sizes: Vec<usize> = self.multi_clusters().map(Cluster::len).collect();
        sizes.sort_unstable();
        let nodes_clustered = sizes.iter().sum();
        let num_clusters = sizes.len();
        let mean_size = if num_clusters == 0 {
            0.0
        } else {
            nodes_clustered as f64 / num_clusters as f64
        };
        let median_size = match num_clusters {
            0 => 0.0,
            n if n % 2 == 1 => sizes[n / 2] as f64,
            n => (sizes[n / 2 - 1] + sizes[n / 2]) as f64 / 2.0,
        };
        let max_size = self.clusters.iter().map(Cluster::len).max().unwrap_or(0);
        ClusterSummary {
            nodes_clustered,
            total_nodes: self.total_nodes(),
            num_clusters,
            mean_size,
            median_size,
            max_size,
        }
    }

    /// Runs the SMF algorithm over `nodes` (id, ratio map) pairs.
    ///
    /// Output is a partition: every input node appears in exactly one
    /// cluster. Input order does not affect which clusters exist, only
    /// tie-breaking among equal similarities (which is further pinned by
    /// node id).
    ///
    /// # Panics
    ///
    /// Panics if the threshold is outside `[0, 1]` or a node id appears
    /// twice.
    pub fn smf<K>(nodes: &[(N, RatioMap<K>)], cfg: &SmfConfig) -> Clustering<N>
    where
        N: std::fmt::Debug,
        K: Ord + Clone + std::fmt::Debug,
    {
        crp_telemetry::profile_scope!("core.smf");
        crp_telemetry::mem_domain!("core.cluster");
        cfg.validate();
        let ids: BTreeSet<&N> = nodes.iter().map(|(n, _)| n).collect();
        assert_eq!(ids.len(), nodes.len(), "duplicate node ids");

        if nodes.is_empty() {
            return Clustering {
                clusters: Vec::new(),
            };
        }

        crp_telemetry::counter_add("core.smf.runs", 1);
        if crp_telemetry::enabled() {
            for (_, map) in nodes {
                crp_telemetry::observe_unit("core.smf.mapping_strength", map.strongest().1);
            }
        }
        let mut joins = 0u64;
        let mut merges = 0u64;

        let maps: BTreeMap<&N, &RatioMap<K>> = nodes.iter().map(|(n, m)| (n, m)).collect();
        let mut clusters: Vec<Cluster<N>> = Vec::new();
        // Indices into `clusters` whose centers attract pass-1 joiners.
        let mut active_centers: Vec<usize> = Vec::new();

        match cfg.center_strategy {
            CenterStrategy::StrongestMappings => {
                // Strongest mappings first: the processing order itself
                // determines the centers.
                let mut order: Vec<&(N, RatioMap<K>)> = nodes.iter().collect();
                order.sort_by(|(na, ma), (nb, mb)| {
                    mb.strongest()
                        .1
                        .total_cmp(&ma.strongest().1)
                        .then_with(|| na.cmp(nb))
                });
                for (node, map) in order {
                    let joined = try_join(map, node, &mut clusters, &active_centers, &maps, cfg);
                    if joined {
                        joins += 1;
                    } else {
                        active_centers.push(clusters.len());
                        clusters.push(Cluster::singleton(node.clone()));
                    }
                }
            }
            CenterStrategy::Random { count } => {
                // Pre-drawn centers; everyone else either joins one or
                // becomes a passive singleton (rescued by pass 2).
                let center_ids = random_centers(nodes, count, cfg.seed);
                for (n, _) in nodes.iter().filter(|(n, _)| center_ids.contains(n)) {
                    active_centers.push(clusters.len());
                    clusters.push(Cluster::singleton(n.clone()));
                }
                for (node, map) in nodes {
                    if center_ids.contains(node) {
                        continue;
                    }
                    let joined = try_join(map, node, &mut clusters, &active_centers, &maps, cfg);
                    if joined {
                        joins += 1;
                    } else {
                        clusters.push(Cluster::singleton(node.clone()));
                    }
                }
            }
        }

        // Pass 2: merge singleton clusters (lonely centers included) in
        // seeded random order.
        if cfg.second_pass {
            let mut lone: Vec<usize> = clusters
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.is_multi())
                .map(|(i, _)| i)
                .collect();
            seeded_shuffle(&mut lone, cfg.seed);
            let mut absorbed: BTreeSet<usize> = BTreeSet::new();
            for (pos, &ci) in lone.iter().enumerate() {
                if absorbed.contains(&ci) {
                    continue;
                }
                let center_node = clusters[ci].center.clone();
                for &cj in &lone[pos + 1..] {
                    if absorbed.contains(&cj) {
                        continue;
                    }
                    let other = clusters[cj].center.clone();
                    let s = cfg.metric.compare(maps[&center_node], maps[&other]);
                    if crate::explain::enabled() {
                        crate::explain::record_assignment(
                            &other,
                            Some(&center_node),
                            s,
                            cfg.threshold,
                            s > cfg.threshold,
                        );
                    }
                    if s > cfg.threshold {
                        clusters[ci].members.push(other);
                        absorbed.insert(cj);
                        merges += 1;
                    }
                }
            }
            let mut kept = Vec::with_capacity(clusters.len() - absorbed.len());
            for (i, c) in clusters.into_iter().enumerate() {
                if !absorbed.contains(&i) {
                    kept.push(c);
                }
            }
            clusters = kept;
        }

        crate::debug_invariant!(
            crate::invariant::check_disjoint_partition(
                clusters.iter().map(|c| c.members.iter()),
                nodes.len()
            ),
            "Clustering::smf ({} nodes, threshold {})",
            nodes.len(),
            cfg.threshold
        );
        crp_telemetry::counter_add("core.smf.joins", joins);
        crp_telemetry::counter_add("core.smf.merges", merges);
        crp_telemetry::gauge_set("core.smf.clusters", clusters.len() as f64);
        Clustering { clusters }
    }
}

/// Attempts to join `node` to the active cluster whose center is most
/// similar, returning whether it joined.
fn try_join<N, K>(
    map: &RatioMap<K>,
    node: &N,
    clusters: &mut [Cluster<N>],
    active_centers: &[usize],
    maps: &BTreeMap<&N, &RatioMap<K>>,
    cfg: &SmfConfig,
) -> bool
where
    N: Ord + Clone + std::fmt::Debug,
    K: Ord + Clone + std::fmt::Debug,
{
    let mut best: Option<(f64, usize)> = None;
    for &ci in active_centers {
        let s = cfg.metric.compare(map, maps[&clusters[ci].center]);
        if best.is_none_or(|(bs, _)| s > bs) {
            best = Some((s, ci));
        }
    }
    if crate::explain::enabled() {
        let joined = matches!(best, Some((s, _)) if s > cfg.threshold);
        crate::explain::record_assignment(
            node,
            best.map(|(_, ci)| &clusters[ci].center),
            best.map_or(0.0, |(s, _)| s),
            cfg.threshold,
            joined,
        );
    }
    match best {
        Some((s, ci)) if s > cfg.threshold => {
            clusters[ci].members.push(node.clone());
            true
        }
        _ => false,
    }
}

fn random_centers<N: Ord + Clone, K>(
    nodes: &[(N, RatioMap<K>)],
    count: usize,
    seed: u64,
) -> BTreeSet<N>
where
    K: Ord + Clone,
{
    let mut order: Vec<usize> = (0..nodes.len()).collect();
    seeded_shuffle(&mut order, seed ^ 0xC3);
    order
        .into_iter()
        .take(count)
        .map(|i| nodes[i].0.clone())
        .collect()
}

/// Deterministic Fisher–Yates shuffle driven by the noise primitives.
fn seeded_shuffle<T>(items: &mut [T], seed: u64) {
    for i in (1..items.len()).rev() {
        let j = (noise::mix(&[seed, i as u64]) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

impl<N> crp_telemetry::MemFootprint for Clustering<N> {
    fn mem_footprint(&self) -> usize {
        self.clusters.capacity() * std::mem::size_of::<Cluster<N>>()
            + self
                .clusters
                .iter()
                .map(|c| c.members.capacity() * std::mem::size_of::<N>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(&'static str, f64)]) -> RatioMap<&'static str> {
        RatioMap::from_weights(entries.iter().copied()).unwrap()
    }

    /// Two well-separated groups: {A,B,C} behind replica v, {D,E,F}
    /// behind replica x — the scenario in the paper's Fig. 3.
    fn two_group_nodes() -> Vec<(&'static str, RatioMap<&'static str>)> {
        vec![
            ("A", map(&[("v", 0.8), ("t", 0.2)])),
            ("B", map(&[("v", 0.7), ("z", 0.3)])),
            ("C", map(&[("v", 0.9), ("t", 0.1)])),
            ("D", map(&[("x", 0.6), ("w", 0.4)])),
            ("E", map(&[("x", 0.8), ("y", 0.2)])),
            ("F", map(&[("x", 0.7), ("w", 0.3)])),
        ]
    }

    #[test]
    fn figure3_scenario_forms_two_clusters() {
        let nodes = two_group_nodes();
        let clustering = Clustering::smf(&nodes, &SmfConfig::paper(0.1));
        let multi: Vec<_> = clustering.multi_clusters().collect();
        assert_eq!(multi.len(), 2, "{clustering:?}");
        let mut groups: Vec<Vec<&str>> = multi
            .iter()
            .map(|c| {
                let mut m: Vec<&str> = c.members().to_vec();
                m.sort_unstable();
                m
            })
            .collect();
        groups.sort();
        assert_eq!(groups, vec![vec!["A", "B", "C"], vec!["D", "E", "F"]]);
    }

    #[test]
    fn output_is_a_partition() {
        let nodes = two_group_nodes();
        let clustering = Clustering::smf(&nodes, &SmfConfig::paper(0.1));
        assert_eq!(clustering.total_nodes(), nodes.len());
        let mut all: Vec<&str> = clustering
            .clusters()
            .iter()
            .flat_map(|c| c.members().iter().copied())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), nodes.len());
    }

    #[test]
    fn high_threshold_fragments_clusters() {
        let nodes = two_group_nodes();
        let loose = Clustering::smf(&nodes, &SmfConfig::paper(0.1)).summary();
        let strict = Clustering::smf(&nodes, &SmfConfig::paper(0.999)).summary();
        assert!(strict.nodes_clustered <= loose.nodes_clustered);
    }

    #[test]
    fn zero_threshold_groups_any_overlap() {
        let nodes = vec![
            ("A", map(&[("v", 1.0)])),
            ("B", map(&[("v", 0.01), ("w", 0.99)])),
            ("C", map(&[("q", 1.0)])),
        ];
        let clustering = Clustering::smf(&nodes, &SmfConfig::paper(0.0));
        assert_eq!(clustering.cluster_of(&"A"), clustering.cluster_of(&"B"));
        assert_ne!(clustering.cluster_of(&"A"), clustering.cluster_of(&"C"));
    }

    #[test]
    fn disjoint_nodes_stay_singletons() {
        let nodes = vec![
            ("A", map(&[("u", 1.0)])),
            ("B", map(&[("v", 1.0)])),
            ("C", map(&[("w", 1.0)])),
        ];
        let clustering = Clustering::smf(&nodes, &SmfConfig::paper(0.1));
        assert_eq!(clustering.singleton_count(), 3);
        assert_eq!(clustering.summary().num_clusters, 0);
        assert!(clustering.peers_of(&"A").is_empty());
    }

    #[test]
    fn second_pass_rescues_passive_singletons() {
        // With zero pre-drawn random centers, pass 1 leaves everything a
        // passive singleton; only the second pass can merge them.
        let nodes = vec![
            ("A", map(&[("u", 0.9), ("shared", 0.1)])),
            ("B", map(&[("v", 0.9), ("shared", 0.1)])),
        ];
        let mut cfg = SmfConfig {
            center_strategy: CenterStrategy::Random { count: 0 },
            ..SmfConfig::paper(0.005)
        };
        cfg.second_pass = false;
        let without = Clustering::smf(&nodes, &cfg);
        assert_eq!(without.singleton_count(), 2);
        cfg.second_pass = true;
        let with = Clustering::smf(&nodes, &cfg);
        assert_eq!(with.summary().num_clusters, 1);
        assert_eq!(with.summary().nodes_clustered, 2);
    }

    #[test]
    fn strongest_node_seeds_the_cluster() {
        // C has the strongest single mapping, so it is processed first
        // and becomes the center A and B join.
        let nodes = vec![
            ("A", map(&[("v", 0.8), ("t", 0.2)])),
            ("B", map(&[("v", 0.7), ("z", 0.3)])),
            ("C", map(&[("v", 0.9), ("t", 0.1)])),
        ];
        let clustering = Clustering::smf(&nodes, &SmfConfig::paper(0.1));
        let cluster = clustering
            .multi_clusters()
            .next()
            .expect("one cluster forms");
        assert_eq!(cluster.center(), &"C");
        assert_eq!(cluster.len(), 3);
    }

    #[test]
    fn random_centers_still_partition() {
        let nodes = two_group_nodes();
        let cfg = SmfConfig {
            center_strategy: CenterStrategy::Random { count: 2 },
            ..SmfConfig::paper(0.1)
        };
        let clustering = Clustering::smf(&nodes, &cfg);
        assert_eq!(clustering.total_nodes(), nodes.len());
    }

    #[test]
    fn smf_is_deterministic() {
        let nodes = two_group_nodes();
        let a = Clustering::smf(&nodes, &SmfConfig::paper(0.1));
        let b = Clustering::smf(&nodes, &SmfConfig::paper(0.1));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_gives_empty_clustering() {
        let nodes: Vec<(&str, RatioMap<&str>)> = Vec::new();
        let clustering = Clustering::smf(&nodes, &SmfConfig::paper(0.1));
        assert_eq!(clustering.total_nodes(), 0);
        assert_eq!(clustering.summary().num_clusters, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate node ids")]
    fn duplicate_ids_rejected() {
        let nodes = vec![("A", map(&[("u", 1.0)])), ("A", map(&[("v", 1.0)]))];
        let _ = Clustering::smf(&nodes, &SmfConfig::paper(0.1));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        let nodes = two_group_nodes();
        let _ = Clustering::smf(&nodes, &SmfConfig::paper(1.5));
    }

    #[test]
    fn summary_statistics_match_by_hand() {
        let nodes = two_group_nodes();
        let s = Clustering::smf(&nodes, &SmfConfig::paper(0.1)).summary();
        assert_eq!(s.nodes_clustered, 6);
        assert_eq!(s.total_nodes, 6);
        assert_eq!(s.num_clusters, 2);
        assert!((s.mean_size - 3.0).abs() < 1e-12);
        assert!((s.median_size - 3.0).abs() < 1e-12);
        assert_eq!(s.max_size, 3);
        assert!((s.fraction_clustered() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_groups_builds_partition() {
        let clustering = Clustering::from_groups(vec![vec!["a", "b"], vec!["c"]]);
        assert_eq!(clustering.total_nodes(), 3);
        assert_eq!(clustering.clusters()[0].center(), &"a");
        assert_eq!(clustering.peers_of(&"b"), vec![&"a"]);
    }

    #[test]
    #[should_panic(expected = "two clusters")]
    fn from_groups_rejects_overlap() {
        let _ = Clustering::from_groups(vec![vec!["a", "b"], vec!["b"]]);
    }

    #[test]
    fn representatives_come_from_distinct_clusters() {
        let nodes = two_group_nodes();
        let clustering = Clustering::smf(&nodes, &SmfConfig::paper(0.1));
        let reps = clustering.representatives(2);
        assert_eq!(reps.len(), 2);
        assert_ne!(
            clustering.cluster_of(reps[0]),
            clustering.cluster_of(reps[1])
        );
    }
}
