//! Per-node redirection history and the window policies of Figs. 8–9.

use crate::observation::Observation;
use crate::ratio::{RatioMap, RatioMapError};
use crp_netsim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which slice of a node's observation history feeds its ratio map.
///
/// The paper studies this dimension in Fig. 9: a 10-probe window is
/// usually enough, 30 adds a little, and "all probes" *hurts* a third of
/// hosts because stale history misrepresents current network conditions.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowPolicy {
    /// Use the entire history.
    All,
    /// Use only the most recent `n` probes.
    LastProbes(usize),
    /// Use only probes within `max_age` of the query time.
    MaxAge(SimDuration),
}

impl WindowPolicy {
    /// Human-readable label for experiment output.
    pub fn label(self) -> String {
        match self {
            WindowPolicy::All => "all probes".to_owned(),
            WindowPolicy::LastProbes(n) => format!("{n} probes"),
            WindowPolicy::MaxAge(d) => format!("max age {d}"),
        }
    }
}

/// A node's rolling redirection history.
///
/// Records must be appended in non-decreasing time order (the natural
/// order of a probing loop); ratio maps can then be derived under any
/// [`WindowPolicy`] without re-probing.
///
/// # Example
///
/// ```
/// use crp_core::{RedirectionTracker, WindowPolicy};
/// use crp_netsim::SimTime;
///
/// let mut tracker = RedirectionTracker::new();
/// tracker.record(SimTime::from_mins(0), vec!["r1", "r2"]);
/// tracker.record(SimTime::from_mins(10), vec!["r1", "r1"]);
/// let map = tracker.ratio_map(WindowPolicy::All, SimTime::from_mins(10))?;
/// assert!((map.get(&"r1") - 0.75).abs() < 1e-12);
/// # Ok::<(), crp_core::RatioMapError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct RedirectionTracker<K> {
    observations: VecDeque<Observation<K>>,
    capacity: Option<usize>,
}

impl<K: Ord + Clone> RedirectionTracker<K> {
    /// Creates a tracker with unbounded history.
    pub fn new() -> Self {
        RedirectionTracker {
            // crp-lint: allow(CRP014) — const empty constructor; nothing is allocated until the first push
            observations: VecDeque::new(),
            capacity: None,
        }
    }

    /// Creates a tracker that retains at most `capacity` observations,
    /// discarding the oldest — the memory bound a deployed CRP client
    /// would use.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        RedirectionTracker {
            observations: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
        }
    }

    /// Appends one observation.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or `time` precedes the previous
    /// observation.
    pub fn record(&mut self, time: SimTime, servers: Vec<K>) {
        crp_telemetry::mem_domain!("core.tracker");
        if let Some(last) = self.observations.back() {
            assert!(
                time >= last.time,
                "observations must be recorded in time order"
            );
        }
        self.observations.push_back(Observation::new(time, servers));
        crp_telemetry::trace::stage_at(time.as_millis(), "core.tracker.record");
        crp_telemetry::counter_add_at(time.as_millis(), "core.tracker.observations", 1);
        if let Some(cap) = self.capacity {
            while self.observations.len() > cap {
                self.observations.pop_front();
                crp_telemetry::counter_add_at(time.as_millis(), "core.tracker.evictions", 1);
            }
        }
    }

    /// Appends one observation from a borrowed server list.
    ///
    /// Unlike [`record`](Self::record), this does not take ownership of
    /// a freshly allocated `Vec`: on a bounded tracker at capacity, the
    /// evicted observation's buffer is recycled to hold the new sample,
    /// so steady-state ingest allocates nothing. This is the intended
    /// path for long probing campaigns (ROADMAP item 1 targets
    /// allocation-free ingest at 100k–1M hosts).
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or `time` precedes the previous
    /// observation.
    pub fn record_slice(&mut self, time: SimTime, servers: &[K]) {
        crp_telemetry::mem_domain!("core.tracker");
        assert!(!servers.is_empty(), "observations must carry servers");
        if let Some(last) = self.observations.back() {
            assert!(
                time >= last.time,
                "observations must be recorded in time order"
            );
        }
        let at_capacity = self
            .capacity
            .is_some_and(|cap| self.observations.len() >= cap);
        if at_capacity {
            if let Some(mut recycled) = self.observations.pop_front() {
                crp_telemetry::counter_add_at(time.as_millis(), "core.tracker.evictions", 1);
                recycled.time = time;
                recycled.trace = crp_telemetry::trace::current_raw();
                recycled.servers.clear();
                recycled.servers.extend_from_slice(servers);
                self.observations.push_back(recycled);
                crp_telemetry::trace::stage_at(time.as_millis(), "core.tracker.record");
                crp_telemetry::counter_add_at(time.as_millis(), "core.tracker.observations", 1);
                return;
            }
        }
        // First fill (or unbounded tracker): the buffer must be owned.
        // crp-lint: allow(CRP009) — one-time warm-up copy; steady state recycles evicted buffers
        let owned = servers.to_vec();
        self.observations.push_back(Observation::new(time, owned));
        crp_telemetry::trace::stage_at(time.as_millis(), "core.tracker.record");
        crp_telemetry::counter_add_at(time.as_millis(), "core.tracker.observations", 1);
    }

    /// Number of observations currently held.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The stored observations, oldest first.
    pub fn observations(&self) -> impl Iterator<Item = &Observation<K>> {
        self.observations.iter()
    }

    /// Time of the most recent observation, if any.
    pub fn last_time(&self) -> Option<SimTime> {
        self.observations.back().map(|o| o.time)
    }

    /// Drops observations older than `cutoff` and returns how many were
    /// removed.
    pub fn prune_before(&mut self, cutoff: SimTime) -> usize {
        let before = self.observations.len();
        while self.observations.front().is_some_and(|o| o.time < cutoff) {
            self.observations.pop_front();
        }
        let removed = before - self.observations.len();
        crp_telemetry::counter_add("core.tracker.pruned", removed as u64);
        removed
    }

    /// Builds the node's ratio map from the observations selected by
    /// `window`, evaluated at time `now`.
    ///
    /// Observations after `now` are never used, so a tracker holding a
    /// full campaign's history can be queried retrospectively at any
    /// instant ("what did this node know at hour 30?") — the experiment
    /// harness relies on this to evaluate one campaign at several
    /// points in time.
    ///
    /// Every server in a selected observation counts as one redirection
    /// event; ratios are event counts normalized to 1.
    ///
    /// # Errors
    ///
    /// Returns [`RatioMapError::Empty`] if the window selects no
    /// observations — e.g. a node that has not finished bootstrapping.
    pub fn ratio_map(
        &self,
        window: WindowPolicy,
        now: SimTime,
    ) -> Result<RatioMap<K>, RatioMapError> {
        crp_telemetry::profile_scope!("core.ratio_map");
        crp_telemetry::mem_domain!("core.ratio_map");
        crp_telemetry::counter_add("core.ratio_map.builds", 1);
        // Only history known at `now` participates. Every window policy
        // reduces to a (skip, min_time) pair over that prefix, so one
        // concrete iterator chain serves all three — no boxed trait
        // objects on the query path.
        let known = self.observations.partition_point(|o| o.time <= now);
        let (skip, min_time) = match window {
            WindowPolicy::All => (0, SimTime::ZERO),
            WindowPolicy::LastProbes(n) => (known.saturating_sub(n), SimTime::ZERO),
            WindowPolicy::MaxAge(max_age) => (
                0,
                SimTime::from_millis(now.as_millis().saturating_sub(max_age.as_millis())),
            ),
        };
        if crp_telemetry::trace::enabled() {
            // Attribute the build to every traced observation feeding it,
            // so a query's span tree reaches back to redirection events.
            for o in self
                .observations
                .iter()
                .take(known)
                .skip(skip)
                .filter(|o| o.time >= min_time)
            {
                crp_telemetry::trace::resume(o.trace, now.as_millis(), "core.ratio_map");
            }
        }
        let selected = self
            .observations
            .iter()
            .take(known)
            .skip(skip)
            .filter(move |o| o.time >= min_time);
        // crp-lint: allow(CRP009) — ratio maps own their keys; one clone per selected event is irreducible
        RatioMap::from_counts(selected.flat_map(|o| o.servers.iter().cloned().map(|s| (s, 1u64))))
    }
}

impl<K> crp_telemetry::MemFootprint for RedirectionTracker<K> {
    fn mem_footprint(&self) -> usize {
        self.observations.capacity() * std::mem::size_of::<Observation<K>>()
            + self
                .observations
                .iter()
                .map(|o| o.servers.capacity() * std::mem::size_of::<K>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker_with(n: usize) -> RedirectionTracker<u32> {
        let mut t = RedirectionTracker::new();
        for i in 0..n {
            t.record(SimTime::from_mins(10 * i as u64), vec![i as u32 % 3]);
        }
        t
    }

    #[test]
    fn all_window_uses_everything() {
        let t = tracker_with(9);
        let m = t
            .ratio_map(WindowPolicy::All, SimTime::from_mins(80))
            .unwrap();
        // Servers 0,1,2 appear 3 times each.
        for k in 0..3u32 {
            assert!((m.get(&k) - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn last_probes_window_truncates() {
        let t = tracker_with(9);
        // Last 2 probes saw servers 1 (i=7) and 2 (i=8).
        let m = t
            .ratio_map(WindowPolicy::LastProbes(2), SimTime::from_mins(80))
            .unwrap();
        assert_eq!(m.get(&0), 0.0);
        assert!((m.get(&1) - 0.5).abs() < 1e-12);
        assert!((m.get(&2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn last_probes_larger_than_history_is_all() {
        let t = tracker_with(4);
        let all = t
            .ratio_map(WindowPolicy::All, SimTime::from_mins(40))
            .unwrap();
        let big = t
            .ratio_map(WindowPolicy::LastProbes(100), SimTime::from_mins(40))
            .unwrap();
        assert_eq!(all, big);
    }

    #[test]
    fn max_age_window_filters_by_time() {
        let t = tracker_with(9); // times 0..80 min
        let m = t
            .ratio_map(
                WindowPolicy::MaxAge(SimDuration::from_mins(25)),
                SimTime::from_mins(80),
            )
            .unwrap();
        // Probes at 60, 70, 80 min → servers 0, 1, 2.
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn empty_window_is_error() {
        let t = tracker_with(3); // times 0, 10, 20 min
        let res = t.ratio_map(
            WindowPolicy::MaxAge(SimDuration::from_mins(5)),
            SimTime::from_hours(10),
        );
        assert_eq!(res.unwrap_err(), RatioMapError::Empty);
        let empty: RedirectionTracker<u32> = RedirectionTracker::new();
        assert_eq!(
            empty
                .ratio_map(WindowPolicy::All, SimTime::ZERO)
                .unwrap_err(),
            RatioMapError::Empty
        );
    }

    #[test]
    fn capacity_bounds_history() {
        let mut t = RedirectionTracker::with_capacity(3);
        for i in 0..10u64 {
            t.record(SimTime::from_mins(i), vec![i as u32]);
        }
        assert_eq!(t.len(), 3);
        let m = t
            .ratio_map(WindowPolicy::All, SimTime::from_mins(9))
            .unwrap();
        assert_eq!(m.get(&0), 0.0);
        assert!(m.get(&9) > 0.0);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_record_panics() {
        let mut t = RedirectionTracker::new();
        t.record(SimTime::from_mins(10), vec![1u32]);
        t.record(SimTime::from_mins(5), vec![2u32]);
    }

    #[test]
    fn record_slice_matches_record() {
        let mut by_vec = RedirectionTracker::with_capacity(3);
        let mut by_slice = RedirectionTracker::with_capacity(3);
        for i in 0..8u32 {
            let servers = vec![i % 4, (i + 1) % 4];
            by_vec.record(SimTime::from_mins(u64::from(i)), servers.clone());
            by_slice.record_slice(SimTime::from_mins(u64::from(i)), &servers);
        }
        assert_eq!(by_vec.len(), by_slice.len());
        let now = SimTime::from_mins(10);
        let a = by_vec.ratio_map(WindowPolicy::All, now).unwrap();
        let b = by_slice.ratio_map(WindowPolicy::All, now).unwrap();
        for s in 0..4u32 {
            assert!((a.get(&s) - b.get(&s)).abs() < 1e-12);
        }
    }

    #[test]
    fn record_slice_recycles_at_capacity() {
        let mut t = RedirectionTracker::with_capacity(2);
        t.record_slice(SimTime::ZERO, &[1u32]);
        t.record_slice(SimTime::from_mins(1), &[2]);
        // Third observation evicts the first and reuses its buffer.
        t.record_slice(SimTime::from_mins(2), &[3, 4, 5]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.last_time(), Some(SimTime::from_mins(2)));
        let m = t
            .ratio_map(WindowPolicy::All, SimTime::from_mins(2))
            .unwrap();
        assert_eq!(m.get(&1), 0.0);
        assert!((m.get(&3) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_record_slice_panics() {
        let mut t = RedirectionTracker::new();
        t.record_slice(SimTime::from_mins(10), &[1u32]);
        t.record_slice(SimTime::from_mins(5), &[2u32]);
    }

    #[test]
    #[should_panic(expected = "carry servers")]
    fn empty_record_slice_panics() {
        let mut t = RedirectionTracker::<u32>::new();
        t.record_slice(SimTime::ZERO, &[]);
    }

    #[test]
    fn prune_before_drops_old() {
        let mut t = tracker_with(5); // 0..40 min
        let removed = t.prune_before(SimTime::from_mins(25));
        assert_eq!(removed, 3);
        assert_eq!(t.len(), 2);
        assert_eq!(t.last_time(), Some(SimTime::from_mins(40)));
    }

    #[test]
    fn multi_server_observations_count_each_event() {
        let mut t = RedirectionTracker::new();
        t.record(SimTime::ZERO, vec![1u32, 2]);
        t.record(SimTime::from_mins(10), vec![1, 1]);
        let m = t
            .ratio_map(WindowPolicy::All, SimTime::from_mins(10))
            .unwrap();
        assert!((m.get(&1) - 0.75).abs() < 1e-12);
        assert!((m.get(&2) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        let _ = RedirectionTracker::<u32>::with_capacity(0);
    }

    #[test]
    fn future_observations_are_invisible() {
        let t = tracker_with(9); // probes at 0, 10, ..., 80 minutes
                                 // Evaluated at minute 35, only the first four probes exist.
        let now = SimTime::from_mins(35);
        let all = t.ratio_map(WindowPolicy::All, now).unwrap();
        // Probes 0..=3 saw servers 0,1,2,0.
        assert!((all.get(&0) - 0.5).abs() < 1e-12);
        let last2 = t.ratio_map(WindowPolicy::LastProbes(2), now).unwrap();
        // Last two probes at-or-before minute 35 saw servers 2 (i=2) and
        // 0 (i=3).
        assert_eq!(last2.get(&1), 0.0);
        assert!((last2.get(&0) - 0.5).abs() < 1e-12);
        // Before any probe: no information.
        assert!(
            t.ratio_map(WindowPolicy::All, SimTime::ZERO).is_ok(),
            "probe at t=0 is known at t=0"
        );
    }

    #[test]
    fn window_labels() {
        assert_eq!(WindowPolicy::All.label(), "all probes");
        assert_eq!(WindowPolicy::LastProbes(10).label(), "10 probes");
    }
}
