//! Ratio maps: a host's redirection history as normalized frequencies.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A node's redirection ratio map: for each replica server seen, the
/// fraction of redirections that pointed at it (§III-B of the paper).
///
/// Invariants, enforced at construction:
///
/// * at least one entry,
/// * every ratio is strictly positive and finite,
/// * the ratios sum to 1 (within floating-point tolerance).
///
/// `K` is the replica-server key — a replica id when driven by the
/// simulated CDN, or anything `Ord + Clone` in tests.
///
/// # Example
///
/// ```
/// use crp_core::RatioMap;
///
/// // Node A was redirected to r1 30% of the time and r2 70% of the time.
/// let map = RatioMap::from_counts([("r1", 3u64), ("r2", 7u64)])?;
/// assert!((map.get(&"r1") - 0.3).abs() < 1e-12);
/// assert_eq!(map.get(&"absent"), 0.0);
/// # Ok::<(), crp_core::RatioMapError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RatioMap<K: Ord> {
    entries: BTreeMap<K, f64>,
}

impl<K: Ord + Clone> RatioMap<K> {
    /// Builds a ratio map from raw redirection counts.
    ///
    /// Zero-count entries are dropped; duplicate keys accumulate.
    ///
    /// # Errors
    ///
    /// Returns [`RatioMapError::Empty`] if no key has a positive count.
    pub fn from_counts<I>(counts: I) -> Result<Self, RatioMapError>
    where
        I: IntoIterator<Item = (K, u64)>,
    {
        Self::from_weights(counts.into_iter().map(|(k, c)| (k, c as f64)))
    }

    /// Builds a ratio map from arbitrary non-negative weights, which are
    /// normalized to sum to 1.
    ///
    /// Zero-weight entries are dropped; duplicate keys accumulate.
    ///
    /// # Errors
    ///
    /// * [`RatioMapError::InvalidWeight`] if any weight is negative, NaN
    ///   or infinite.
    /// * [`RatioMapError::Empty`] if the total weight is zero.
    pub fn from_weights<I>(weights: I) -> Result<Self, RatioMapError>
    where
        I: IntoIterator<Item = (K, f64)>,
    {
        let mut entries: BTreeMap<K, f64> = BTreeMap::new();
        for (k, w) in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(RatioMapError::InvalidWeight { weight: w });
            }
            if w > 0.0 {
                *entries.entry(k).or_insert(0.0) += w;
            }
        }
        let total: f64 = entries.values().sum();
        if total <= 0.0 || entries.is_empty() {
            return Err(RatioMapError::Empty);
        }
        for v in entries.values_mut() {
            *v /= total;
        }
        crate::debug_invariant!(
            // crp-lint: allow(CRP014) — debug-assertions-only invariant check; compiled out in release
            crate::invariant::check_ratio_distribution(entries.values()),
            "RatioMap::from_weights ({} entries)",
            entries.len()
        );
        Ok(RatioMap { entries })
    }

    /// The ratio for `key`, or 0 if the node was never redirected there.
    pub fn get(&self, key: &K) -> f64 {
        self.entries.get(key).copied().unwrap_or(0.0)
    }

    /// Number of distinct replica servers in the map.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false: an empty ratio map cannot be constructed. Provided
    /// for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over `(replica, ratio)` entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, f64)> {
        self.entries.iter().map(|(k, v)| (k, *v))
    }

    /// The replica keys, in order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.keys()
    }

    /// The entry with the largest ratio, breaking ties toward the
    /// smaller key. This is a node's *strongest mapping*, the quantity
    /// the SMF clustering algorithm orders by.
    pub fn strongest(&self) -> (&K, f64) {
        self.entries
            .iter()
            .max_by(|a, b| a.1.total_cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(k, v)| (k, *v))
            .expect("ratio maps are non-empty") // crp-lint: allow(CRP001) — construction guarantees at least one entry
    }

    /// The Euclidean norm of the ratio vector.
    pub fn l2_norm(&self) -> f64 {
        self.entries.values().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// The dot product with another map (sum over common replicas).
    pub fn dot(&self, other: &RatioMap<K>) -> f64 {
        // Iterate the smaller map and probe the larger one.
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.entries.iter().map(|(k, v)| v * large.get(k)).sum()
    }

    /// The cosine similarity with another map, in `[0, 1]` (§III-B).
    ///
    /// 1 means identical redirection behavior; 0 means no replica in
    /// common — the case where the paper says CRP can only report that
    /// the nodes are unlikely to be near one another.
    pub fn cosine_similarity(&self, other: &RatioMap<K>) -> f64 {
        let denom = self.l2_norm() * other.l2_norm();
        // Norms are strictly positive by the construction invariant.
        let score = (self.dot(other) / denom).clamp(0.0, 1.0);
        crate::debug_invariant!(
            // crp-lint: allow(CRP014) — debug-assertions-only invariant check; compiled out in release
            crate::invariant::check_unit_interval(score),
            "RatioMap::cosine_similarity"
        );
        score
    }

    /// Decomposes the cosine similarity with `other` into additive
    /// per-replica shares: entry `(k, s)` means replica `k` contributes
    /// `s` to [`cosine_similarity`], and the shares sum to the score.
    /// Only shared replicas appear (disjoint keys contribute zero);
    /// strongest share first, ties toward the smaller key. This is the
    /// decision-provenance primitive behind `explain`.
    ///
    /// [`cosine_similarity`]: RatioMap::cosine_similarity
    pub fn cosine_contributions<'a>(&'a self, other: &'a RatioMap<K>) -> Vec<(&'a K, f64)> {
        let denom = self.l2_norm() * other.l2_norm();
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut shares: Vec<(&K, f64)> = small
            .entries
            .iter()
            .filter_map(|(k, v)| {
                let w = large.get(k);
                (w > 0.0).then(|| (k, v * w / denom))
            })
            .collect();
        shares.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        shares
    }

    /// The L1 (Manhattan) distance to `other` over the union of replica
    /// keys, in `[0, 2]`. 0 means identical redirection behavior; 2
    /// means fully disjoint replica sets. This is the drift metric the
    /// audit layer compares consecutive ratio-map snapshots with.
    pub fn l1_distance(&self, other: &RatioMap<K>) -> f64 {
        let mut sum: f64 = self.iter().map(|(k, v)| (v - other.get(k)).abs()).sum();
        sum += other
            .entries
            .iter()
            .filter(|(k, _)| !self.entries.contains_key(k))
            .map(|(_, v)| v)
            .sum::<f64>();
        sum
    }

    /// Whether the two maps share any replica server. When false, CRP
    /// cannot position the pair (dot product is zero).
    pub fn overlaps(&self, other: &RatioMap<K>) -> bool {
        let (small, large) = if self.len() <= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        small.entries.keys().any(|k| large.entries.contains_key(k))
    }

    /// The `n` largest entries as `(replica, ratio)`, strongest first.
    pub fn top_entries(&self, n: usize) -> Vec<(&K, f64)> {
        let mut all: Vec<(&K, f64)> = self.iter().collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        all.truncate(n);
        all
    }
}

impl<K: Ord + Clone + fmt::Display> fmt::Display for RatioMap<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k} => {v:.3}")?;
        }
        write!(f, ">")
    }
}

impl<K: Ord> crp_telemetry::MemFootprint for RatioMap<K> {
    fn mem_footprint(&self) -> usize {
        crp_telemetry::mem::ordered_map_footprint(
            self.entries.len(),
            std::mem::size_of::<K>() + std::mem::size_of::<f64>(),
        )
    }
}

/// Error constructing a [`RatioMap`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum RatioMapError {
    /// No entry had positive weight: the node has observed no
    /// redirections (yet), so it has no position information.
    Empty,
    /// A weight was negative, NaN or infinite.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
    },
}

impl fmt::Display for RatioMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatioMapError::Empty => write!(f, "ratio map has no redirection observations"),
            RatioMapError::InvalidWeight { weight } => {
                write!(
                    f,
                    "ratio weight {weight} is not a finite non-negative number"
                )
            }
        }
    }
}

impl Error for RatioMapError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(&'static str, f64)]) -> RatioMap<&'static str> {
        RatioMap::from_weights(entries.iter().copied()).unwrap()
    }

    #[test]
    fn ratios_sum_to_one() {
        let m = map(&[("a", 3.0), ("b", 1.0), ("c", 4.0)]);
        let sum: f64 = m.iter().map(|(_, v)| v).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_keys_accumulate() {
        let m = RatioMap::from_counts([("a", 1u64), ("a", 2), ("b", 1)]).unwrap();
        assert!((m.get(&"a") - 0.75).abs() < 1e-12);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn zero_weights_are_dropped() {
        let m = map(&[("a", 1.0), ("ghost", 0.0)]);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&"ghost"), 0.0);
    }

    #[test]
    fn empty_is_rejected() {
        assert_eq!(
            RatioMap::<&str>::from_counts(std::iter::empty()),
            Err(RatioMapError::Empty)
        );
        assert_eq!(
            RatioMap::from_counts([("a", 0u64)]),
            Err(RatioMapError::Empty)
        );
    }

    #[test]
    fn invalid_weights_are_rejected() {
        assert!(matches!(
            RatioMap::from_weights([("a", -0.5)]),
            Err(RatioMapError::InvalidWeight { .. })
        ));
        assert!(matches!(
            RatioMap::from_weights([("a", f64::NAN)]),
            Err(RatioMapError::InvalidWeight { .. })
        ));
        assert!(matches!(
            RatioMap::from_weights([("a", f64::INFINITY)]),
            Err(RatioMapError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn paper_worked_example() {
        // §IV-A: ν_A = <x: 0.2, y: 0.8>, ν_B = <x: 0.6, y: 0.4>,
        // ν_C = <x: 0.1, y: 0.9> — cos(A,B) = 0.740, cos(A,C) = 0.991.
        let a = map(&[("x", 0.2), ("y", 0.8)]);
        let b = map(&[("x", 0.6), ("y", 0.4)]);
        let c = map(&[("x", 0.1), ("y", 0.9)]);
        assert!((a.cosine_similarity(&b) - 0.7399).abs() < 1e-3);
        assert!((a.cosine_similarity(&c) - 0.9915).abs() < 1e-3);
    }

    #[test]
    fn identical_maps_have_similarity_one() {
        let a = map(&[("x", 0.5), ("y", 0.3), ("z", 0.2)]);
        assert!((a.cosine_similarity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_maps_have_similarity_zero() {
        let a = map(&[("x", 1.0)]);
        let b = map(&[("y", 1.0)]);
        assert_eq!(a.cosine_similarity(&b), 0.0);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = map(&[("x", 0.2), ("y", 0.8)]);
        let b = map(&[("y", 0.5), ("z", 0.5)]);
        assert_eq!(a.cosine_similarity(&b), b.cosine_similarity(&a));
        assert_eq!(a.dot(&b), b.dot(&a));
    }

    #[test]
    fn strongest_mapping_with_tie_break() {
        let m = map(&[("b", 0.4), ("a", 0.4), ("c", 0.2)]);
        let (k, v) = m.strongest();
        assert_eq!(*k, "a");
        assert!((v - 0.4).abs() < 1e-12);
    }

    #[test]
    fn cosine_contributions_sum_to_score() {
        let a = map(&[("x", 0.2), ("y", 0.8)]);
        let b = map(&[("x", 0.6), ("y", 0.4)]);
        let shares = a.cosine_contributions(&b);
        assert_eq!(shares.len(), 2);
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - a.cosine_similarity(&b)).abs() < 1e-12);
        // Strongest share first.
        assert!(shares[0].1 >= shares[1].1);
        // Only shared replicas contribute.
        let c = map(&[("x", 0.5), ("z", 0.5)]);
        let shares = a.cosine_contributions(&c);
        assert_eq!(shares.len(), 1);
        assert_eq!(*shares[0].0, "x");
        // Disjoint maps have no contributions.
        let d = map(&[("q", 1.0)]);
        assert!(a.cosine_contributions(&d).is_empty());
    }

    #[test]
    fn l1_distance_bounds_and_symmetry() {
        let a = map(&[("x", 0.2), ("y", 0.8)]);
        let b = map(&[("x", 0.6), ("y", 0.4)]);
        assert_eq!(a.l1_distance(&a), 0.0);
        assert!((a.l1_distance(&b) - 0.8).abs() < 1e-12);
        assert_eq!(a.l1_distance(&b), b.l1_distance(&a));
        // Fully disjoint maps are at the maximum distance of 2.
        let d = map(&[("q", 1.0)]);
        assert!((a.l1_distance(&d) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn top_entries_ordering() {
        let m = map(&[("a", 0.1), ("b", 0.6), ("c", 0.3)]);
        let top: Vec<&str> = m.top_entries(2).into_iter().map(|(k, _)| *k).collect();
        assert_eq!(top, vec!["b", "c"]);
    }

    #[test]
    fn display_shows_entries() {
        let m = map(&[("x", 0.25), ("y", 0.75)]);
        assert_eq!(m.to_string(), "<x => 0.250, y => 0.750>");
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!RatioMapError::Empty.to_string().is_empty());
        assert!(!RatioMapError::InvalidWeight { weight: -1.0 }
            .to_string()
            .is_empty());
    }
}
