//! The primitive relative-position query (§III-B).
//!
//! "To determine the relative position of two hosts A and B with respect
//! to a third host C, we can simply compute the cosine similarity of
//! their respective redirection maps. In particular, if
//! cos_sim(A, C) < cos_sim(B, C), then host B is the closer to C."
//!
//! This module makes that three-point query a first-class, honest API:
//! the answer carries the margin, and degenerate cases (no overlap with
//! either host) are reported as [`RelativeOrder::Indeterminate`] rather
//! than a coin flip — the paper is explicit that zero-overlap pairs are
//! outside CRP's competence.

use crate::ratio::RatioMap;
use crate::similarity::SimilarityMetric;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The answer to "which of A, B is closer to C?".
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum RelativeOrder {
    /// A is closer to the reference than B.
    CloserA {
        /// Similarity margin `sim(A,C) − sim(B,C)`, in `(0, 1]`.
        margin: f64,
    },
    /// B is closer to the reference than A.
    CloserB {
        /// Similarity margin `sim(B,C) − sim(A,C)`, in `(0, 1]`.
        margin: f64,
    },
    /// CRP cannot order the pair: neither shares a replica with the
    /// reference, or the similarities tie exactly.
    Indeterminate,
}

impl RelativeOrder {
    /// Whether the query produced an ordering.
    pub fn is_determinate(self) -> bool {
        !matches!(self, RelativeOrder::Indeterminate)
    }
}

impl fmt::Display for RelativeOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelativeOrder::CloserA { margin } => write!(f, "A closer (margin {margin:.3})"),
            RelativeOrder::CloserB { margin } => write!(f, "B closer (margin {margin:.3})"),
            RelativeOrder::Indeterminate => write!(f, "indeterminate"),
        }
    }
}

/// Orders hosts A and B relative to reference C by ratio-map similarity.
///
/// # Example
///
/// The paper's worked example — relative to A, host C beats host B:
///
/// ```
/// use crp_core::relative::{relative_position, RelativeOrder};
/// use crp_core::{RatioMap, SimilarityMetric};
///
/// let a = RatioMap::from_weights([("x", 0.2), ("y", 0.8)])?;
/// let b = RatioMap::from_weights([("x", 0.6), ("y", 0.4)])?;
/// let c = RatioMap::from_weights([("x", 0.1), ("y", 0.9)])?;
/// // Which of B, C is closer to A?
/// let order = relative_position(&b, &c, &a, SimilarityMetric::Cosine);
/// assert!(matches!(order, RelativeOrder::CloserB { .. })); // C wins
/// # Ok::<(), crp_core::RatioMapError>(())
/// ```
pub fn relative_position<K: Ord + Clone + std::fmt::Debug>(
    a: &RatioMap<K>,
    b: &RatioMap<K>,
    reference: &RatioMap<K>,
    metric: SimilarityMetric,
) -> RelativeOrder {
    let sa = metric.compare(a, reference);
    let sb = metric.compare(b, reference);
    if sa == 0.0 && sb == 0.0 {
        return RelativeOrder::Indeterminate;
    }
    if sa > sb {
        RelativeOrder::CloserA { margin: sa - sb }
    } else if sb > sa {
        RelativeOrder::CloserB { margin: sb - sa }
    } else {
        RelativeOrder::Indeterminate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(&'static str, f64)]) -> RatioMap<&'static str> {
        RatioMap::from_weights(entries.iter().copied()).unwrap()
    }

    #[test]
    fn paper_example_orders_c_before_b() {
        let a = map(&[("x", 0.2), ("y", 0.8)]);
        let b = map(&[("x", 0.6), ("y", 0.4)]);
        let c = map(&[("x", 0.1), ("y", 0.9)]);
        match relative_position(&b, &c, &a, SimilarityMetric::Cosine) {
            RelativeOrder::CloserB { margin } => {
                assert!((margin - (0.9915 - 0.7399)).abs() < 1e-3)
            }
            other => panic!("expected CloserB, got {other}"),
        }
    }

    #[test]
    fn symmetric_query_flips_the_answer() {
        let a = map(&[("x", 1.0)]);
        let b = map(&[("y", 1.0)]);
        let c = map(&[("x", 0.5), ("y", 0.5)]);
        let ab = relative_position(&a, &b, &c, SimilarityMetric::Cosine);
        let ba = relative_position(&b, &a, &c, SimilarityMetric::Cosine);
        match (ab, ba) {
            (RelativeOrder::CloserA { margin: m1 }, RelativeOrder::CloserB { margin: m2 })
            | (RelativeOrder::CloserB { margin: m1 }, RelativeOrder::CloserA { margin: m2 }) => {
                assert!((m1 - m2).abs() < 1e-12)
            }
            (RelativeOrder::Indeterminate, RelativeOrder::Indeterminate) => {}
            other => panic!("asymmetric answers: {other:?}"),
        }
    }

    #[test]
    fn no_overlap_with_reference_is_indeterminate() {
        let a = map(&[("p", 1.0)]);
        let b = map(&[("q", 1.0)]);
        let c = map(&[("z", 1.0)]);
        assert_eq!(
            relative_position(&a, &b, &c, SimilarityMetric::Cosine),
            RelativeOrder::Indeterminate
        );
        assert!(!RelativeOrder::Indeterminate.is_determinate());
    }

    #[test]
    fn exact_tie_is_indeterminate() {
        let a = map(&[("x", 1.0)]);
        let c = map(&[("x", 0.5), ("y", 0.5)]);
        assert_eq!(
            relative_position(&a, &a.clone(), &c, SimilarityMetric::Cosine),
            RelativeOrder::Indeterminate
        );
    }

    #[test]
    fn one_sided_overlap_is_decisive() {
        let a = map(&[("x", 1.0)]);
        let b = map(&[("q", 1.0)]);
        let c = map(&[("x", 0.5), ("y", 0.5)]);
        let order = relative_position(&a, &b, &c, SimilarityMetric::Cosine);
        assert!(matches!(order, RelativeOrder::CloserA { .. }));
    }

    #[test]
    fn display_forms() {
        assert_eq!(RelativeOrder::Indeterminate.to_string(), "indeterminate");
        assert!(RelativeOrder::CloserA { margin: 0.25 }
            .to_string()
            .contains("0.250"));
    }
}
