//! Service state snapshots.
//!
//! A deployed CRP service accumulates observation history worth hours of
//! bootstrap time; restarting from nothing would cost every node its
//! ~100-minute warm-up (§VI). [`ServiceSnapshot`] captures a
//! [`CrpService`]'s full observation state as plain serializable data so
//! it can be persisted across restarts or shipped between service
//! replicas.

use crate::observation::Observation;
use crate::service::CrpService;
use crate::similarity::SimilarityMetric;
use crate::tracker::{RedirectionTracker, WindowPolicy};
use serde::{Deserialize, Serialize};

/// A serializable image of a [`CrpService`]'s observation state.
///
/// # Example
///
/// ```
/// use crp_core::{CrpService, ServiceSnapshot, SimilarityMetric, WindowPolicy};
/// use crp_netsim::SimTime;
///
/// let mut svc: CrpService<String, String> =
///     CrpService::new(WindowPolicy::LastProbes(10), SimilarityMetric::Cosine);
/// svc.record("a".into(), SimTime::ZERO, vec!["r1".into()]);
///
/// let json = serde_json::to_string(&ServiceSnapshot::capture(&svc))?;
/// let restored: ServiceSnapshot<String, String> = serde_json::from_str(&json)?;
/// let svc2 = restored.restore();
/// assert_eq!(svc2.node_count(), 1);
/// # Ok::<(), serde_json::Error>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceSnapshot<N: Ord, K> {
    window: WindowPolicy,
    metric: SimilarityMetric,
    nodes: Vec<(N, Vec<Observation<K>>)>,
}

impl<N: Ord + Clone + std::fmt::Debug, K: Ord + Clone + std::fmt::Debug> ServiceSnapshot<N, K> {
    /// Captures the full state of a service.
    pub fn capture(service: &CrpService<N, K>) -> Self {
        ServiceSnapshot {
            window: service.window(),
            metric: service.metric(),
            nodes: service
                .iter_trackers()
                .map(|(n, t)| (n.clone(), t.observations().cloned().collect()))
                .collect(),
        }
    }

    /// Rebuilds the service from the snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is internally inconsistent (out-of-order
    /// observation times for a node) — which cannot happen for snapshots
    /// produced by [`ServiceSnapshot::capture`], only for hand-edited
    /// data.
    pub fn restore(self) -> CrpService<N, K> {
        let mut service = CrpService::new(self.window, self.metric);
        for (node, observations) in self.nodes {
            for obs in observations {
                service.record(node.clone(), obs.time, obs.servers);
            }
        }
        service
    }

    /// Number of nodes captured.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total observations captured across all nodes.
    pub fn observation_count(&self) -> usize {
        self.nodes.iter().map(|(_, o)| o.len()).sum()
    }
}

/// Accessors used by the snapshot machinery.
impl<N: Ord + Clone + std::fmt::Debug, K: Ord + Clone + std::fmt::Debug> CrpService<N, K> {
    /// Iterates over `(node, tracker)` pairs — read-only access to the
    /// raw observation state, primarily for snapshotting.
    pub fn iter_trackers(&self) -> impl Iterator<Item = (&N, &RedirectionTracker<K>)> {
        self.trackers_for_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crp_netsim::SimTime;

    fn populated() -> CrpService<&'static str, &'static str> {
        let mut svc = CrpService::new(WindowPolicy::LastProbes(5), SimilarityMetric::Cosine);
        svc.record("a", SimTime::ZERO, vec!["r1", "r2"]);
        svc.record("a", SimTime::from_mins(10), vec!["r1"]);
        svc.record("b", SimTime::from_mins(5), vec!["r3"]);
        svc
    }

    #[test]
    fn capture_restore_round_trips() {
        let svc = populated();
        let snapshot = ServiceSnapshot::capture(&svc);
        assert_eq!(snapshot.node_count(), 2);
        assert_eq!(snapshot.observation_count(), 3);
        let restored = snapshot.restore();
        let now = SimTime::from_mins(10);
        assert_eq!(restored.node_count(), svc.node_count());
        assert_eq!(restored.window(), svc.window());
        assert_eq!(
            restored.ratio_map(&"a", now).unwrap(),
            svc.ratio_map(&"a", now).unwrap()
        );
        assert_eq!(
            restored.similarity(&"a", &"b", now).ok(),
            svc.similarity(&"a", &"b", now).ok()
        );
    }

    #[test]
    fn json_round_trip() {
        // Owned keys: deserialization cannot borrow from the JSON text.
        let mut svc: CrpService<String, String> =
            CrpService::new(WindowPolicy::LastProbes(5), SimilarityMetric::Cosine);
        svc.record("a".into(), SimTime::ZERO, vec!["r1".into(), "r2".into()]);
        svc.record("a".into(), SimTime::from_mins(10), vec!["r1".into()]);
        svc.record("b".into(), SimTime::from_mins(5), vec!["r3".into()]);
        let json = serde_json::to_string(&ServiceSnapshot::capture(&svc)).unwrap();
        let back: ServiceSnapshot<String, String> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ServiceSnapshot::capture(&svc));
    }

    #[test]
    fn empty_service_snapshots_cleanly() {
        let svc: CrpService<&str, &str> =
            CrpService::new(WindowPolicy::All, SimilarityMetric::Cosine);
        let snapshot = ServiceSnapshot::capture(&svc);
        assert_eq!(snapshot.node_count(), 0);
        assert_eq!(snapshot.observation_count(), 0);
        let restored = snapshot.restore();
        assert_eq!(restored.node_count(), 0);
    }
}
