//! A stand-alone CRP service façade.
//!
//! The paper sketches (§III-B) a CRP-based service that applications
//! query for relative positions: each participating node feeds its
//! redirection observations in, and the service answers closest-node and
//! clustering queries from the accumulated ratio maps. [`CrpService`] is
//! that service.

use crate::cluster::{Clustering, SmfConfig};
use crate::ratio::{RatioMap, RatioMapError};
use crate::select::Ranking;
use crate::similarity::SimilarityMetric;
use crate::tracker::{RedirectionTracker, WindowPolicy};
use crp_netsim::SimTime;
use std::collections::BTreeMap;

/// A multi-node CRP positioning service.
///
/// `N` identifies participating nodes, `K` identifies replica servers.
///
/// # Example
///
/// ```
/// use crp_core::{CrpService, SimilarityMetric, WindowPolicy};
/// use crp_netsim::SimTime;
///
/// let mut svc: CrpService<&str, &str> = CrpService::new(
///     WindowPolicy::LastProbes(10),
///     SimilarityMetric::Cosine,
/// );
/// svc.record("client", SimTime::ZERO, vec!["r1", "r2"]);
/// svc.record("server-a", SimTime::ZERO, vec!["r1", "r2"]);
/// svc.record("server-b", SimTime::ZERO, vec!["r9", "r9"]);
///
/// let ranking = svc.closest(&"client", ["server-a", "server-b"], SimTime::ZERO)?;
/// assert_eq!(ranking.top(), Some(&"server-a"));
/// # Ok::<(), crp_core::RatioMapError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CrpService<N: Ord, K> {
    trackers: BTreeMap<N, RedirectionTracker<K>>,
    window: WindowPolicy,
    metric: SimilarityMetric,
}

impl<N, K> CrpService<N, K>
where
    N: Ord + Clone + std::fmt::Debug,
    K: Ord + Clone + std::fmt::Debug,
{
    /// Creates a service with the given window policy and metric. The
    /// paper's recommended operating point is a 10-probe window with
    /// cosine similarity.
    pub fn new(window: WindowPolicy, metric: SimilarityMetric) -> Self {
        CrpService {
            trackers: BTreeMap::new(),
            window,
            metric,
        }
    }

    /// The window policy in effect.
    pub fn window(&self) -> WindowPolicy {
        self.window
    }

    /// Returns the service with a different window policy, keeping all
    /// recorded observations — cheap re-interpretation of the same
    /// history, used by the window-size sweep (Fig. 9).
    pub fn with_window(mut self, window: WindowPolicy) -> Self {
        self.window = window;
        self
    }

    /// Returns the service with a different similarity metric, keeping
    /// all recorded observations — used by the metric ablation.
    pub fn with_metric(mut self, metric: SimilarityMetric) -> Self {
        self.metric = metric;
        self
    }

    /// The similarity metric in effect.
    pub fn metric(&self) -> SimilarityMetric {
        self.metric
    }

    /// Number of nodes with at least one recorded observation.
    pub fn node_count(&self) -> usize {
        self.trackers.len()
    }

    /// Raw tracker access for the snapshot machinery.
    pub(crate) fn trackers_for_snapshot(
        &self,
    ) -> impl Iterator<Item = (&N, &RedirectionTracker<K>)> {
        self.trackers.iter()
    }

    /// Records one redirection observation for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or `time` precedes the node's last
    /// observation.
    pub fn record(&mut self, node: N, time: SimTime, servers: Vec<K>) {
        self.trackers
            .entry(node)
            .or_insert_with(RedirectionTracker::new)
            .record(time, servers);
    }

    /// The node's ratio map under the service's window policy at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`RatioMapError::Empty`] if the node is unknown or its
    /// window selects no observations.
    pub fn ratio_map(&self, node: &N, now: SimTime) -> Result<RatioMap<K>, RatioMapError> {
        match self.trackers.get(node) {
            Some(t) => t.ratio_map(self.window, now),
            None => Err(RatioMapError::Empty),
        }
    }

    /// The similarity between two nodes at `now`.
    ///
    /// # Errors
    ///
    /// Returns [`RatioMapError::Empty`] if either node has no usable
    /// observations.
    pub fn similarity(&self, a: &N, b: &N, now: SimTime) -> Result<f64, RatioMapError> {
        crp_telemetry::trace::begin_query(now.as_millis());
        let ma = self.ratio_map(a, now)?;
        let mb = self.ratio_map(b, now)?;
        Ok(self.metric.compare(&ma, &mb))
    }

    /// Ranks `candidates` by proximity to `client` (§IV-A). Candidates
    /// without usable observations are silently skipped — they cannot be
    /// positioned at all.
    ///
    /// # Errors
    ///
    /// Returns [`RatioMapError::Empty`] if the *client* has no usable
    /// observations.
    pub fn closest<I>(
        &self,
        client: &N,
        candidates: I,
        now: SimTime,
    ) -> Result<Ranking<N>, RatioMapError>
    where
        I: IntoIterator<Item = N>,
    {
        crp_telemetry::trace::begin_query(now.as_millis());
        let client_map = self.ratio_map(client, now)?;
        let maps: Vec<(N, RatioMap<K>)> = candidates
            .into_iter()
            .filter_map(|n| self.ratio_map(&n, now).ok().map(|m| (n, m)))
            .collect();
        Ok(Ranking::rank(
            &client_map,
            maps.iter().map(|(n, m)| (n.clone(), m)),
            self.metric,
        ))
    }

    /// Removes a departed node's state entirely (churn handling).
    /// Returns whether the node was known.
    pub fn remove_node(&mut self, node: &N) -> bool {
        self.trackers.remove(node).is_some()
    }

    /// Drops observations older than `max_age` before `now` from every
    /// tracker, and removes nodes left with no observations at all.
    /// Returns `(observations_dropped, nodes_removed)` — the bookkeeping
    /// a long-running service performs to bound memory under churn.
    pub fn prune_stale(
        &mut self,
        now: SimTime,
        max_age: crp_netsim::SimDuration,
    ) -> (usize, usize) {
        let cutoff = SimTime::from_millis(now.as_millis().saturating_sub(max_age.as_millis()));
        let mut dropped = 0;
        for tracker in self.trackers.values_mut() {
            dropped += tracker.prune_before(cutoff);
        }
        let before = self.trackers.len();
        self.trackers.retain(|_, t| !t.is_empty());
        (dropped, before - self.trackers.len())
    }

    /// The §III-B primitive: which of `a`, `b` is closer to
    /// `reference` at `now`?
    ///
    /// # Errors
    ///
    /// Returns [`RatioMapError::Empty`] if any of the three nodes has no
    /// usable observations.
    pub fn relative(
        &self,
        a: &N,
        b: &N,
        reference: &N,
        now: SimTime,
    ) -> Result<crate::relative::RelativeOrder, RatioMapError> {
        crp_telemetry::trace::begin_query(now.as_millis());
        let ma = self.ratio_map(a, now)?;
        let mb = self.ratio_map(b, now)?;
        let mr = self.ratio_map(reference, now)?;
        Ok(crate::relative::relative_position(
            &ma,
            &mb,
            &mr,
            self.metric,
        ))
    }

    /// Clusters every node with usable observations using SMF (§IV-B).
    /// Nodes without usable observations are omitted from the result.
    pub fn cluster(&self, cfg: &SmfConfig, now: SimTime) -> Clustering<N> {
        crp_telemetry::trace::begin_query(now.as_millis());
        let nodes: Vec<(N, RatioMap<K>)> = self
            .trackers
            .iter()
            .filter_map(|(n, t)| t.ratio_map(self.window, now).ok().map(|m| (n.clone(), m)))
            .collect();
        // crp-lint: allow(CRP015) — smf's slice indexing is bounds-derived in the same pass; tracked as CRP010 debt in cluster.rs
        Clustering::smf(&nodes, cfg)
    }
}

impl<N: Ord, K> crp_telemetry::MemFootprint for CrpService<N, K> {
    fn mem_footprint(&self) -> usize {
        crp_telemetry::mem::ordered_map_footprint(
            self.trackers.len(),
            std::mem::size_of::<N>() + std::mem::size_of::<RedirectionTracker<K>>(),
        ) + self
            .trackers
            .values()
            .map(crp_telemetry::MemFootprint::mem_footprint)
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::SmfConfig;

    fn service() -> CrpService<&'static str, &'static str> {
        CrpService::new(WindowPolicy::All, SimilarityMetric::Cosine)
    }

    #[test]
    fn closest_matches_manual_ranking() {
        let mut svc = service();
        // The §IV-A example: A(0.2/0.8), B(0.6/0.4), C(0.1/0.9) over x, y.
        for _ in 0..1 {
            svc.record("A", SimTime::ZERO, vec!["x"]);
        }
        for _ in 0..4 {
            svc.record("A", SimTime::ZERO, vec!["y"]);
        }
        for _ in 0..3 {
            svc.record("B", SimTime::ZERO, vec!["x"]);
        }
        for _ in 0..2 {
            svc.record("B", SimTime::ZERO, vec!["y"]);
        }
        for _ in 0..1 {
            svc.record("C", SimTime::ZERO, vec!["x"]);
        }
        for _ in 0..9 {
            svc.record("C", SimTime::ZERO, vec!["y"]);
        }
        let ranking = svc.closest(&"A", ["B", "C"], SimTime::ZERO).unwrap();
        assert_eq!(ranking.top(), Some(&"C"));
    }

    #[test]
    fn unknown_client_is_an_error() {
        let svc = service();
        assert!(svc.closest(&"ghost", ["a"], SimTime::ZERO).is_err());
        assert_eq!(
            svc.ratio_map(&"ghost", SimTime::ZERO).unwrap_err(),
            RatioMapError::Empty
        );
    }

    #[test]
    fn unknown_candidates_are_skipped() {
        let mut svc = service();
        svc.record("client", SimTime::ZERO, vec!["r"]);
        svc.record("known", SimTime::ZERO, vec!["r"]);
        let ranking = svc
            .closest(&"client", ["known", "ghost"], SimTime::ZERO)
            .unwrap();
        assert_eq!(ranking.len(), 1);
        assert_eq!(ranking.top(), Some(&"known"));
    }

    #[test]
    fn similarity_is_symmetric_through_service() {
        let mut svc = service();
        svc.record("a", SimTime::ZERO, vec!["r1", "r2"]);
        svc.record("b", SimTime::ZERO, vec!["r2", "r3"]);
        let ab = svc.similarity(&"a", &"b", SimTime::ZERO).unwrap();
        let ba = svc.similarity(&"b", &"a", SimTime::ZERO).unwrap();
        assert_eq!(ab, ba);
        assert!(ab > 0.0 && ab < 1.0);
    }

    #[test]
    fn cluster_covers_all_observed_nodes() {
        let mut svc = service();
        for n in ["a", "b", "c"] {
            svc.record(n, SimTime::ZERO, vec!["shared"]);
        }
        svc.record("d", SimTime::ZERO, vec!["elsewhere"]);
        let clustering = svc.cluster(&SmfConfig::paper(0.1), SimTime::ZERO);
        assert_eq!(clustering.total_nodes(), 4);
        assert_eq!(clustering.summary().nodes_clustered, 3);
    }

    #[test]
    fn window_policy_is_honored() {
        let mut svc: CrpService<&str, &str> =
            CrpService::new(WindowPolicy::LastProbes(1), SimilarityMetric::Cosine);
        svc.record("n", SimTime::ZERO, vec!["old"]);
        svc.record("n", SimTime::from_mins(10), vec!["new"]);
        let m = svc.ratio_map(&"n", SimTime::from_mins(10)).unwrap();
        assert_eq!(m.get(&"old"), 0.0);
        assert!((m.get(&"new") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn churn_pruning_drops_stale_state() {
        let mut svc = service();
        svc.record("old", SimTime::ZERO, vec!["r1"]);
        svc.record("mixed", SimTime::ZERO, vec!["r1"]);
        svc.record("mixed", SimTime::from_hours(10), vec!["r2"]);
        svc.record("fresh", SimTime::from_hours(10), vec!["r3"]);
        let (dropped, removed) = svc.prune_stale(
            SimTime::from_hours(11),
            crp_netsim::SimDuration::from_hours(2),
        );
        assert_eq!(dropped, 2, "two stale observations");
        assert_eq!(removed, 1, "`old` had nothing left");
        assert_eq!(svc.node_count(), 2);
        assert!(svc.ratio_map(&"mixed", SimTime::from_hours(11)).is_ok());
        assert!(svc.remove_node(&"fresh"));
        assert!(!svc.remove_node(&"fresh"));
        assert_eq!(svc.node_count(), 1);
    }

    #[test]
    fn relative_query_through_service() {
        let mut svc = service();
        svc.record("A", SimTime::ZERO, vec!["x", "y", "y", "y", "y"]);
        svc.record("B", SimTime::ZERO, vec!["x", "x", "x", "y", "y"]);
        svc.record("C", SimTime::ZERO, vec!["x", "y", "y", "y", "y"]);
        // C's map matches A's exactly; B's does not.
        let order = svc.relative(&"C", &"B", &"A", SimTime::ZERO).unwrap();
        assert!(matches!(
            order,
            crate::relative::RelativeOrder::CloserA { .. }
        ));
        assert!(svc.relative(&"C", &"B", &"ghost", SimTime::ZERO).is_err());
    }

    #[test]
    fn node_count_tracks_distinct_nodes() {
        let mut svc = service();
        assert_eq!(svc.node_count(), 0);
        svc.record("a", SimTime::ZERO, vec!["r"]);
        svc.record("a", SimTime::ZERO, vec!["r"]);
        svc.record("b", SimTime::ZERO, vec!["r"]);
        assert_eq!(svc.node_count(), 2);
    }
}
