//! Cluster-quality metrics (§V-B, Fig. 6–7).
//!
//! Quality is judged against a ground-truth distance oracle (in the
//! paper, King-measured RTTs): a cluster is *good* when its members are
//! closer to their own center than that center is to other clusters'
//! centers — the shaded region of Fig. 6.

use crate::cluster::{Cluster, Clustering};
use serde::{Deserialize, Serialize};

/// Distance statistics for one multi-member cluster.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterQuality {
    /// Index of the cluster in the clustering.
    pub cluster_index: usize,
    /// Number of members.
    pub size: usize,
    /// Mean distance (ms) from non-center members to the center — the
    /// paper's *intracluster distance*.
    pub intra_ms: f64,
    /// Maximum pairwise distance among members (ms) — the *diameter*
    /// used for Fig. 7's buckets.
    pub diameter_ms: f64,
    /// Mean distance (ms) from this cluster's center to every other
    /// cluster's center — the paper's *intercluster distance*.
    pub inter_ms: f64,
}

impl ClusterQuality {
    /// The Fig. 6 criterion: members are closer to their own center than
    /// the center is to other clusters.
    pub fn is_good(&self) -> bool {
        self.inter_ms > self.intra_ms
    }
}

/// Quality metrics for every multi-member cluster of a clustering.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    records: Vec<ClusterQuality>,
}

impl QualityReport {
    /// Evaluates `clustering` against a symmetric distance oracle
    /// `dist_ms` (millisecond RTTs). Singleton clusters are skipped —
    /// they have no intracluster distance. When the clustering has a
    /// single multi-member cluster, its `inter_ms` is infinite (there is
    /// no other center), which makes it trivially good.
    pub fn evaluate<N, F>(clustering: &Clustering<N>, mut dist_ms: F) -> QualityReport
    where
        N: Ord + Clone,
        F: FnMut(&N, &N) -> f64,
    {
        // Centers of every cluster (singletons count as potential
        // intercluster endpoints: an unclustered node is still a cluster
        // per the algorithm's output).
        let centers: Vec<&N> = clustering.clusters().iter().map(Cluster::center).collect();
        let mut records = Vec::new();
        for (i, cluster) in clustering.clusters().iter().enumerate() {
            if !cluster.is_multi() {
                continue;
            }
            let center = cluster.center();
            let members = cluster.members();
            let intra: f64 = members
                .iter()
                .filter(|m| *m != center)
                .map(|m| dist_ms(m, center))
                .sum::<f64>()
                / (members.len() - 1) as f64;
            let mut diameter: f64 = 0.0;
            for (a_idx, a) in members.iter().enumerate() {
                for b in &members[a_idx + 1..] {
                    diameter = diameter.max(dist_ms(a, b));
                }
            }
            let others: Vec<f64> = centers
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| dist_ms(center, c))
                .collect();
            let inter = if others.is_empty() {
                f64::INFINITY
            } else {
                others.iter().sum::<f64>() / others.len() as f64
            };
            records.push(ClusterQuality {
                cluster_index: i,
                size: members.len(),
                intra_ms: intra,
                diameter_ms: diameter,
                inter_ms: inter,
            });
        }
        QualityReport { records }
    }

    /// Per-cluster records, in cluster order.
    pub fn records(&self) -> &[ClusterQuality] {
        &self.records
    }

    /// Records restricted to clusters with diameter below `max_ms` — the
    /// paper limits its analysis to diameters under 75 ms.
    pub fn with_max_diameter(&self, max_ms: f64) -> impl Iterator<Item = &ClusterQuality> {
        self.records.iter().filter(move |r| r.diameter_ms < max_ms)
    }

    /// Number of good clusters whose diameter lies in `[lo_ms, hi_ms)` —
    /// the Fig. 7 bucket counts.
    pub fn good_in_diameter_bucket(&self, lo_ms: f64, hi_ms: f64) -> usize {
        self.records
            .iter()
            .filter(|r| r.is_good() && r.diameter_ms >= lo_ms && r.diameter_ms < hi_ms)
            .count()
    }

    /// Fraction of evaluated clusters that are good, or `None` if there
    /// were no multi-member clusters.
    pub fn good_fraction(&self) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        let good = self.records.iter().filter(|r| r.is_good()).count();
        Some(good as f64 / self.records.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Distance oracle over a 1-D line: nodes are integers, distance is
    /// the absolute difference ×10 ms.
    fn line_dist(a: &i32, b: &i32) -> f64 {
        (a - b).abs() as f64 * 10.0
    }

    #[test]
    fn tight_separated_clusters_are_good() {
        // {0,1,2} and {100,101,102}: tiny intra, huge inter.
        let clustering = Clustering::from_groups(vec![vec![0, 1, 2], vec![100, 101, 102]]);
        let report = QualityReport::evaluate(&clustering, line_dist);
        assert_eq!(report.records().len(), 2);
        for r in report.records() {
            assert!(r.is_good(), "{r:?}");
            assert_eq!(r.size, 3);
            assert!(r.intra_ms <= 20.0);
            assert!(r.inter_ms >= 900.0);
            assert_eq!(r.diameter_ms, 20.0);
        }
        assert_eq!(report.good_fraction(), Some(1.0));
    }

    #[test]
    fn overlapping_clusters_are_bad() {
        // Interleaved members: intra exceeds inter.
        let clustering = Clustering::from_groups(vec![vec![0, 100], vec![1, 101]]);
        let report = QualityReport::evaluate(&clustering, line_dist);
        for r in report.records() {
            assert!(!r.is_good(), "{r:?}");
        }
        assert_eq!(report.good_fraction(), Some(0.0));
    }

    #[test]
    fn singletons_are_skipped_but_count_as_inter_targets() {
        let clustering = Clustering::from_groups(vec![vec![0, 1], vec![5]]);
        let report = QualityReport::evaluate(&clustering, line_dist);
        assert_eq!(report.records().len(), 1);
        // Inter distance is to the singleton's center at 5.
        assert_eq!(report.records()[0].inter_ms, 50.0);
    }

    #[test]
    fn lone_multi_cluster_has_infinite_inter() {
        let clustering = Clustering::from_groups(vec![vec![0, 1, 2]]);
        let report = QualityReport::evaluate(&clustering, line_dist);
        assert!(report.records()[0].inter_ms.is_infinite());
        assert!(report.records()[0].is_good());
    }

    #[test]
    fn diameter_buckets_count_good_clusters() {
        let clustering = Clustering::from_groups(vec![vec![0, 1], vec![100, 104], vec![200, 201]]);
        let report = QualityReport::evaluate(&clustering, line_dist);
        // Diameters: 10, 40, 10 ms; all good (centers far apart).
        assert_eq!(report.good_in_diameter_bucket(0.0, 25.0), 2);
        assert_eq!(report.good_in_diameter_bucket(25.0, 75.0), 1);
        assert_eq!(report.with_max_diameter(75.0).count(), 3);
        assert_eq!(report.with_max_diameter(20.0).count(), 2);
    }

    #[test]
    fn empty_report_for_all_singletons() {
        let clustering = Clustering::from_groups(vec![vec![1], vec![2]]);
        let report = QualityReport::evaluate(&clustering, line_dist);
        assert!(report.records().is_empty());
        assert_eq!(report.good_fraction(), None);
    }
}
