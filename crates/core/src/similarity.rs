//! Similarity metrics over ratio maps.
//!
//! The paper uses cosine similarity exclusively; the alternatives here
//! exist for the ablation benches, which ask whether the *weighting*
//! (cosine) or merely the *overlap* (Jaccard) carries the signal.

use crate::ratio::RatioMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The similarity metric used to compare two redirection ratio maps.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimilarityMetric {
    /// Cosine of the angle between the ratio vectors (the paper's
    /// metric).
    Cosine,
    /// Jaccard index of the replica *sets*, ignoring ratios.
    Jaccard,
    /// Sum of per-replica minimum ratios (histogram intersection).
    WeightedOverlap,
}

impl SimilarityMetric {
    /// All metrics, for sweeping in ablations.
    pub const ALL: [SimilarityMetric; 3] = [
        SimilarityMetric::Cosine,
        SimilarityMetric::Jaccard,
        SimilarityMetric::WeightedOverlap,
    ];

    /// Computes the similarity between two maps, in `[0, 1]`.
    ///
    /// # Example
    ///
    /// ```
    /// use crp_core::{RatioMap, SimilarityMetric};
    ///
    /// let a = RatioMap::from_weights([("x", 0.2), ("y", 0.8)])?;
    /// let b = RatioMap::from_weights([("x", 0.6), ("y", 0.4)])?;
    /// let cos = SimilarityMetric::Cosine.compare(&a, &b);
    /// let jac = SimilarityMetric::Jaccard.compare(&a, &b);
    /// assert!((cos - 0.740).abs() < 1e-3);
    /// assert_eq!(jac, 1.0); // same replica sets
    /// # Ok::<(), crp_core::RatioMapError>(())
    /// ```
    pub fn compare<K: Ord + Clone + fmt::Debug>(self, a: &RatioMap<K>, b: &RatioMap<K>) -> f64 {
        crp_telemetry::counter_add("core.similarity.calls", 1);
        crp_telemetry::trace::query_stage("core.similarity");
        let score = match self {
            SimilarityMetric::Cosine => a.cosine_similarity(b),
            SimilarityMetric::Jaccard => jaccard(a, b),
            SimilarityMetric::WeightedOverlap => weighted_overlap(a, b),
        };
        if crate::explain::enabled() {
            // crp-lint: allow(CRP014) — explain hook behind the enabled() gate; off on serving paths
            crate::explain::record_similarity(self, a, b, score);
        }
        crate::debug_invariant!(
            // crp-lint: allow(CRP014) — debug-assertions-only invariant check; compiled out in release
            crate::invariant::check_unit_interval(score),
            "SimilarityMetric::{self:?}::compare"
        );
        score
    }
}

impl fmt::Display for SimilarityMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SimilarityMetric::Cosine => "cosine",
            SimilarityMetric::Jaccard => "jaccard",
            SimilarityMetric::WeightedOverlap => "weighted-overlap",
        };
        f.write_str(name)
    }
}

fn jaccard<K: Ord + Clone>(a: &RatioMap<K>, b: &RatioMap<K>) -> f64 {
    let sa: BTreeSet<&K> = a.keys().collect();
    let sb: BTreeSet<&K> = b.keys().collect();
    let inter = sa.intersection(&sb).count() as f64;
    let union = sa.union(&sb).count() as f64;
    // Union is non-zero: ratio maps are never empty.
    inter / union
}

fn weighted_overlap<K: Ord + Clone>(a: &RatioMap<K>, b: &RatioMap<K>) -> f64 {
    // The sum of per-key minima is mathematically ≤ 1 but can creep a
    // few ulps above it in floating point; clamp like cosine does.
    a.iter()
        .map(|(k, va)| va.min(b.get(k)))
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(&'static str, f64)]) -> RatioMap<&'static str> {
        RatioMap::from_weights(entries.iter().copied()).unwrap()
    }

    #[test]
    fn all_metrics_are_one_on_identical_maps() {
        let m = map(&[("x", 0.4), ("y", 0.6)]);
        for metric in SimilarityMetric::ALL {
            assert!(
                (metric.compare(&m, &m) - 1.0).abs() < 1e-12,
                "{metric} failed"
            );
        }
    }

    #[test]
    fn all_metrics_are_zero_on_disjoint_maps() {
        let a = map(&[("x", 1.0)]);
        let b = map(&[("y", 1.0)]);
        for metric in SimilarityMetric::ALL {
            assert_eq!(metric.compare(&a, &b), 0.0, "{metric} failed");
        }
    }

    #[test]
    fn all_metrics_symmetric() {
        let a = map(&[("x", 0.3), ("y", 0.7)]);
        let b = map(&[("y", 0.2), ("z", 0.8)]);
        for metric in SimilarityMetric::ALL {
            assert!(
                (metric.compare(&a, &b) - metric.compare(&b, &a)).abs() < 1e-12,
                "{metric} asymmetric"
            );
        }
    }

    #[test]
    fn jaccard_counts_sets_not_weights() {
        let a = map(&[("x", 0.99), ("y", 0.01)]);
        let b = map(&[("x", 0.01), ("y", 0.99)]);
        assert_eq!(SimilarityMetric::Jaccard.compare(&a, &b), 1.0);
        // Cosine sees the weight disagreement.
        assert!(SimilarityMetric::Cosine.compare(&a, &b) < 0.1);
    }

    #[test]
    fn weighted_overlap_is_histogram_intersection() {
        let a = map(&[("x", 0.5), ("y", 0.5)]);
        let b = map(&[("x", 0.25), ("z", 0.75)]);
        assert!((SimilarityMetric::WeightedOverlap.compare(&a, &b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_jaccard() {
        let a = map(&[("x", 0.5), ("y", 0.5)]);
        let b = map(&[("y", 0.5), ("z", 0.5)]);
        assert!((SimilarityMetric::Jaccard.compare(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_names() {
        assert_eq!(SimilarityMetric::Cosine.to_string(), "cosine");
        assert_eq!(SimilarityMetric::Jaccard.to_string(), "jaccard");
        assert_eq!(
            SimilarityMetric::WeightedOverlap.to_string(),
            "weighted-overlap"
        );
    }
}
