//! Runtime invariant checks for the CRP pipeline.
//!
//! The CRP algorithms lean on a handful of numeric invariants that the
//! type system cannot express: ratio maps are probability distributions,
//! similarity scores live in `[0, 1]`, SMF clusterings partition their
//! input. [`debug_invariant!`] asserts these in debug builds (including
//! `cargo test`) at the places where the values are constructed, so a
//! violation is caught where it is introduced rather than figures or
//! rankings downstream. Release builds compile the checks out entirely —
//! the expressions inside the macro are never evaluated.
//!
//! The checkers in this module are ordinary functions returning
//! `Result<(), String>`, so they are also directly testable against
//! corrupted inputs without tripping a panic machinery.

/// Asserts a pipeline invariant in debug builds only.
///
/// The first argument is an expression evaluating to
/// `Result<(), String>` (typically one of this module's checkers); the
/// rest is a `format!`-style context message naming the operation that
/// produced the value. Compiled out under `not(debug_assertions)`.
///
/// # Example
///
/// ```
/// use crp_core::debug_invariant;
/// use crp_core::invariant::check_unit_interval;
///
/// let score = 0.75;
/// debug_invariant!(check_unit_interval(score), "cosine({:?}, {:?})", "a", "b");
/// ```
#[macro_export]
macro_rules! debug_invariant {
    ($check:expr, $($ctx:tt)+) => {
        #[cfg(debug_assertions)]
        {
            if let Err(violation) = $check {
                panic!(
                    "CRP invariant violated in {}: {}",
                    format_args!($($ctx)+),
                    violation
                );
            }
        }
    };
}

/// Checks that `entries` forms a ratio map: non-empty, every ratio
/// finite and in `(0, 1]`, and the ratios summing to 1 within `1e-9`.
pub fn check_ratio_distribution<'a, I>(entries: I) -> Result<(), String>
where
    I: IntoIterator<Item = &'a f64>,
{
    let mut sum = 0.0;
    let mut count = 0usize;
    for (i, &ratio) in entries.into_iter().enumerate() {
        if !ratio.is_finite() {
            return Err(format!("entry {i} has non-finite ratio {ratio}"));
        }
        if ratio <= 0.0 {
            return Err(format!("entry {i} has non-positive ratio {ratio}"));
        }
        if ratio > 1.0 + 1e-9 {
            return Err(format!("entry {i} has ratio {ratio} > 1"));
        }
        sum += ratio;
        count += 1;
    }
    if count == 0 {
        return Err("ratio map is empty".to_owned());
    }
    if (sum - 1.0).abs() > 1e-9 {
        return Err(format!("ratios sum to {sum}, expected 1"));
    }
    Ok(())
}

/// Checks that a similarity score is finite and in `[0, 1]`.
pub fn check_unit_interval(score: f64) -> Result<(), String> {
    if !score.is_finite() {
        return Err(format!("score {score} is not finite"));
    }
    if !(0.0..=1.0).contains(&score) {
        return Err(format!("score {score} is outside [0, 1]"));
    }
    Ok(())
}

/// Checks that `clusters` partitions `population`: the cluster member
/// counts sum to the population size and no member appears twice.
///
/// Members are compared as `Ord` keys; `population` is the number of
/// nodes handed to the clustering algorithm.
pub fn check_disjoint_partition<N, C, M>(clusters: C, population: usize) -> Result<(), String>
where
    N: Ord,
    C: IntoIterator<Item = M>,
    M: IntoIterator<Item = N>,
{
    let mut seen = std::collections::BTreeSet::new();
    let mut total = 0usize;
    for (ci, cluster) in clusters.into_iter().enumerate() {
        let mut size = 0usize;
        for member in cluster {
            if !seen.insert(member) {
                return Err(format!("cluster {ci} repeats a member seen earlier"));
            }
            size += 1;
        }
        if size == 0 {
            return Err(format!("cluster {ci} is empty"));
        }
        total += size;
    }
    if total != population {
        return Err(format!(
            "clusters cover {total} nodes, expected {population}"
        ));
    }
    Ok(())
}

/// Checks that ranked similarity scores are sorted non-increasing and
/// each lies in `[0, 1]`.
pub fn check_ranking_scores<'a, I>(scores: I) -> Result<(), String>
where
    I: IntoIterator<Item = &'a f64>,
{
    let mut prev: Option<f64> = None;
    for (i, &score) in scores.into_iter().enumerate() {
        check_unit_interval(score).map_err(|e| format!("rank {i}: {e}"))?;
        if let Some(p) = prev {
            if score > p {
                return Err(format!(
                    "rank {i} score {score} exceeds preceding score {p}"
                ));
            }
        }
        prev = Some(score);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_distribution_passes() {
        assert!(check_ratio_distribution([0.2, 0.3, 0.5].iter()).is_ok());
        assert!(check_ratio_distribution([1.0].iter()).is_ok());
    }

    #[test]
    fn corrupted_distributions_fail() {
        assert!(check_ratio_distribution([].iter()).is_err());
        assert!(check_ratio_distribution([0.5, 0.6].iter()).is_err());
        assert!(check_ratio_distribution([0.5, -0.5, 1.0].iter()).is_err());
        assert!(check_ratio_distribution([f64::NAN, 1.0].iter()).is_err());
        assert!(check_ratio_distribution([0.5, 0.5, 0.0].iter()).is_err());
    }

    #[test]
    fn unit_interval_bounds() {
        assert!(check_unit_interval(0.0).is_ok());
        assert!(check_unit_interval(1.0).is_ok());
        assert!(check_unit_interval(-1e-12).is_err());
        assert!(check_unit_interval(1.0 + 1e-12).is_err());
        assert!(check_unit_interval(f64::NAN).is_err());
    }

    #[test]
    fn partition_checks_cover_and_disjointness() {
        let good = vec![vec!["a", "b"], vec!["c"]];
        assert!(check_disjoint_partition(good, 3).is_ok());
        let duplicated = vec![vec!["a", "b"], vec!["b"]];
        assert!(check_disjoint_partition(duplicated, 3).is_err());
        let short = vec![vec!["a"]];
        assert!(check_disjoint_partition(short, 2).is_err());
        let empty_cluster: Vec<Vec<&str>> = vec![vec![]];
        assert!(check_disjoint_partition(empty_cluster, 0).is_err());
    }

    #[test]
    fn ranking_scores_must_descend() {
        assert!(check_ranking_scores([0.9, 0.9, 0.2].iter()).is_ok());
        assert!(check_ranking_scores([0.2, 0.9].iter()).is_err());
        assert!(check_ranking_scores([0.5, 1.5].iter()).is_err());
    }

    #[test]
    #[should_panic(expected = "CRP invariant violated")]
    fn debug_invariant_fires_on_corrupted_input() {
        debug_invariant!(check_unit_interval(2.0), "test context {}", "here");
    }

    #[test]
    fn debug_invariant_passes_silently() {
        debug_invariant!(check_unit_interval(0.5), "test context");
    }
}
