//! Closest-node selection (§IV-A).
//!
//! Given a client's ratio map and the maps of candidate servers, rank the
//! candidates by similarity: the highest-similarity candidate is CRP's
//! estimate of the closest server. The paper evaluates both the Top-1
//! pick and the average of the Top-5 picks (Figs. 4–5).

use crate::ratio::RatioMap;
use crate::similarity::SimilarityMetric;
use serde::{Deserialize, Serialize};

/// A similarity-ordered ranking of candidate nodes relative to a client.
///
/// Entries are sorted by descending similarity; ties break toward the
/// smaller node id so rankings are deterministic.
///
/// # Example
///
/// ```
/// use crp_core::{RatioMap, Ranking, SimilarityMetric};
///
/// let client = RatioMap::from_weights([("x", 0.2), ("y", 0.8)])?;
/// let b = RatioMap::from_weights([("x", 0.6), ("y", 0.4)])?;
/// let c = RatioMap::from_weights([("x", 0.1), ("y", 0.9)])?;
/// let ranking = Ranking::rank(&client, [("B", &b), ("C", &c)], SimilarityMetric::Cosine);
/// assert_eq!(ranking.top(), Some(&"C")); // the paper's worked example
/// # Ok::<(), crp_core::RatioMapError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Ranking<N> {
    entries: Vec<(N, f64)>,
}

impl<N: Ord> Ranking<N> {
    /// Ranks `candidates` by their similarity to `client` under `metric`.
    ///
    /// Candidates whose maps share no replica with the client score 0;
    /// they stay in the ranking (at the bottom) because the paper's
    /// semantics for zero overlap is "not near", which is still an
    /// ordering signal.
    pub fn rank<'a, K, I>(client: &RatioMap<K>, candidates: I, metric: SimilarityMetric) -> Self
    where
        N: std::fmt::Debug,
        K: Ord + Clone + std::fmt::Debug + 'a,
        I: IntoIterator<Item = (N, &'a RatioMap<K>)>,
    {
        crp_telemetry::profile_scope!("core.rank");
        crp_telemetry::mem_domain!("core.select");
        let mut entries: Vec<(N, f64)> = candidates
            .into_iter()
            .map(|(n, map)| {
                let s = metric.compare(client, map);
                (n, s)
            })
            .collect();
        entries.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        if crate::explain::enabled() {
            // crp-lint: allow(CRP014) — explain hook behind the enabled() gate; off on serving paths
            crate::explain::record_ranking(&entries);
        }
        crp_telemetry::counter_add("core.ranking.builds", 1);
        crp_telemetry::trace::query_stage("core.ranking");
        if let Some((_, top)) = entries.first() {
            crp_telemetry::observe_unit("core.ranking.top_score", *top);
        }
        crate::debug_invariant!(
            // crp-lint: allow(CRP014) — debug-assertions-only invariant check; compiled out in release
            crate::invariant::check_ranking_scores(entries.iter().map(|(_, s)| s)),
            "Ranking::rank ({} candidates)",
            entries.len()
        );
        Ranking { entries }
    }

    /// The best candidate (Top-1), or `None` if the ranking is empty.
    pub fn top(&self) -> Option<&N> {
        self.entries.first().map(|(n, _)| n)
    }

    /// The best `k` candidates, best first.
    pub fn top_k(&self, k: usize) -> Vec<&N> {
        self.entries.iter().take(k).map(|(n, _)| n).collect()
    }

    /// All `(node, similarity)` entries, best first.
    pub fn entries(&self) -> &[(N, f64)] {
        &self.entries
    }

    /// Number of ranked candidates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ranking is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The similarity score of a specific candidate, if ranked.
    pub fn score_of(&self, node: &N) -> Option<f64> {
        self.entries
            .iter()
            .find(|(n, _)| n == node)
            .map(|(_, s)| *s)
    }

    /// Whether the client shares any replica with at least one
    /// candidate. When false, CRP genuinely has no information and a
    /// deployment would fall back to another positioning source.
    pub fn has_signal(&self) -> bool {
        self.entries.iter().any(|(_, s)| *s > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(&'static str, f64)]) -> RatioMap<&'static str> {
        RatioMap::from_weights(entries.iter().copied()).unwrap()
    }

    #[test]
    fn paper_example_selects_c() {
        let a = map(&[("x", 0.2), ("y", 0.8)]);
        let b = map(&[("x", 0.6), ("y", 0.4)]);
        let c = map(&[("x", 0.1), ("y", 0.9)]);
        let r = Ranking::rank(&a, [("B", &b), ("C", &c)], SimilarityMetric::Cosine);
        assert_eq!(r.top(), Some(&"C"));
        assert_eq!(r.top_k(2), vec![&"C", &"B"]);
        assert!((r.score_of(&"C").unwrap() - 0.991).abs() < 1e-3);
    }

    #[test]
    fn zero_overlap_candidates_sink_to_bottom() {
        let client = map(&[("x", 1.0)]);
        let near = map(&[("x", 0.5), ("y", 0.5)]);
        let far = map(&[("z", 1.0)]);
        let r = Ranking::rank(
            &client,
            [("far", &far), ("near", &near)],
            SimilarityMetric::Cosine,
        );
        assert_eq!(r.top(), Some(&"near"));
        assert_eq!(r.score_of(&"far"), Some(0.0));
        assert!(r.has_signal());
    }

    #[test]
    fn no_signal_when_everything_disjoint() {
        let client = map(&[("x", 1.0)]);
        let far = map(&[("z", 1.0)]);
        let r = Ranking::rank(&client, [("far", &far)], SimilarityMetric::Cosine);
        assert!(!r.has_signal());
        assert_eq!(r.top(), Some(&"far"));
    }

    #[test]
    fn ties_break_by_node_id() {
        let client = map(&[("x", 1.0)]);
        let same = map(&[("x", 1.0)]);
        let r = Ranking::rank(
            &client,
            [("zeta", &same), ("alpha", &same)],
            SimilarityMetric::Cosine,
        );
        assert_eq!(r.top(), Some(&"alpha"));
    }

    #[test]
    fn empty_candidate_set() {
        let client = map(&[("x", 1.0)]);
        let r: Ranking<&str> = Ranking::rank(
            &client,
            std::iter::empty::<(&str, &RatioMap<&str>)>(),
            SimilarityMetric::Cosine,
        );
        assert!(r.is_empty());
        assert_eq!(r.top(), None);
        assert!(r.top_k(3).is_empty());
    }

    #[test]
    fn top_k_clamps_to_len() {
        let client = map(&[("x", 1.0)]);
        let c1 = map(&[("x", 0.7), ("y", 0.3)]);
        let r = Ranking::rank(&client, [("only", &c1)], SimilarityMetric::Cosine);
        assert_eq!(r.top_k(5).len(), 1);
        assert_eq!(r.len(), 1);
    }
}
