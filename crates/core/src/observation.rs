//! Redirection observations and their sources.

use crp_netsim::SimTime;
use serde::{Deserialize, Serialize};

/// One redirection sample: the replica servers a CDN lookup returned at a
/// given time (Akamai-style answers typically carry two A records).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation<K> {
    /// When the lookup was made.
    pub time: SimTime,
    /// The replica servers in the answer, in answer order.
    pub servers: Vec<K>,
    /// Raw causal-trace id stamped at record time (0 = untraced). Lets a
    /// later query attribute its ratio-map and ranking stages back to the
    /// redirection events that fed them.
    pub trace: u64,
}

impl<K> Observation<K> {
    /// Creates an observation, stamping it with the ambient trace
    /// context (0 when tracing is disabled or the event was unsampled).
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty — a failed lookup is represented by
    /// *absence* of an observation, not by an empty one.
    pub fn new(time: SimTime, servers: Vec<K>) -> Self {
        assert!(!servers.is_empty(), "observations must carry servers");
        Observation {
            time,
            servers,
            trace: crp_telemetry::trace::current_raw(),
        }
    }
}

/// A stream of redirection observations for one node.
///
/// The production source is a recursive DNS lookup against the CDN (the
/// `crp` façade crate provides that glue); tests drive the algorithms
/// with scripted sources.
pub trait ObservationSource<K> {
    /// Performs one probe at time `t`, returning the replica servers the
    /// CDN redirected this node to, or `None` if the probe failed.
    fn observe(&mut self, t: SimTime) -> Option<Vec<K>>;
}

/// A scripted observation source that replays a fixed sequence — handy
/// for tests and examples.
///
/// # Example
///
/// ```
/// use crp_core::observation::{ObservationSource, ScriptedSource};
/// use crp_netsim::SimTime;
///
/// let mut src = ScriptedSource::new(vec![Some(vec!["r1"]), None]);
/// assert_eq!(src.observe(SimTime::ZERO), Some(vec!["r1"]));
/// assert_eq!(src.observe(SimTime::ZERO), None);
/// assert_eq!(src.observe(SimTime::ZERO), None); // exhausted
/// ```
#[derive(Clone, Debug)]
pub struct ScriptedSource<K> {
    script: std::collections::VecDeque<Option<Vec<K>>>,
}

impl<K> ScriptedSource<K> {
    /// Creates a source replaying `script` in order, then returning
    /// `None` forever.
    pub fn new(script: Vec<Option<Vec<K>>>) -> Self {
        ScriptedSource {
            script: script.into(),
        }
    }
}

impl<K> ObservationSource<K> for ScriptedSource<K> {
    fn observe(&mut self, _t: SimTime) -> Option<Vec<K>> {
        self.script.pop_front().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "must carry servers")]
    fn empty_observation_rejected() {
        let _ = Observation::<u32>::new(SimTime::ZERO, vec![]);
    }

    #[test]
    fn observation_preserves_order() {
        let o = Observation::new(SimTime::from_secs(5), vec!["b", "a"]);
        assert_eq!(o.servers, vec!["b", "a"]);
        assert_eq!(o.time, SimTime::from_secs(5));
    }

    #[test]
    fn scripted_source_replays_then_dries_up() {
        let mut src = ScriptedSource::new(vec![Some(vec![1u32, 2]), None, Some(vec![3])]);
        assert_eq!(src.observe(SimTime::ZERO), Some(vec![1, 2]));
        assert_eq!(src.observe(SimTime::ZERO), None);
        assert_eq!(src.observe(SimTime::ZERO), Some(vec![3]));
        assert_eq!(src.observe(SimTime::ZERO), None);
    }
}
