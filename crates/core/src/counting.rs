//! An incrementally-maintained tracker for long-lived deployments.
//!
//! [`RedirectionTracker`] recomputes
//! ratio maps by re-scanning the window — fine for experiments, wasteful for a
//! service asked for its map after every probe over months of history.
//! [`CountingTracker`] maintains running per-replica counts so the
//! all-history ratio map costs `O(distinct replicas)` instead of
//! `O(observations)`, while a bounded ring buffer still serves the
//! recent-window queries the paper recommends.

use crate::ratio::{RatioMap, RatioMapError};
use crate::tracker::{RedirectionTracker, WindowPolicy};
use crp_netsim::SimTime;
use std::collections::BTreeMap;

/// A tracker with O(1) amortized updates to the lifetime counts and a
/// bounded window buffer for recency queries.
///
/// # Example
///
/// ```
/// use crp_core::counting::CountingTracker;
/// use crp_core::WindowPolicy;
/// use crp_netsim::SimTime;
///
/// let mut t = CountingTracker::new(30);
/// for i in 0..100u64 {
///     t.record(SimTime::from_mins(i * 10), vec![(i % 3) as u32]);
/// }
/// let lifetime = t.lifetime_ratio_map()?;
/// assert_eq!(lifetime.len(), 3);
/// let recent = t.recent_ratio_map(WindowPolicy::LastProbes(10), SimTime::from_mins(990))?;
/// assert!(recent.len() <= 3);
/// # Ok::<(), crp_core::RatioMapError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CountingTracker<K: Ord + Clone> {
    lifetime_counts: BTreeMap<K, u64>,
    lifetime_events: u64,
    recent: RedirectionTracker<K>,
}

impl<K: Ord + Clone> CountingTracker<K> {
    /// Creates a tracker whose recency buffer holds `window_capacity`
    /// observations.
    ///
    /// # Panics
    ///
    /// Panics if `window_capacity` is zero.
    pub fn new(window_capacity: usize) -> Self {
        CountingTracker {
            lifetime_counts: BTreeMap::new(),
            lifetime_events: 0,
            recent: RedirectionTracker::with_capacity(window_capacity),
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or `time` precedes the previous
    /// observation.
    pub fn record(&mut self, time: SimTime, servers: Vec<K>) {
        for s in &servers {
            *self.lifetime_counts.entry(s.clone()).or_insert(0) += 1;
            self.lifetime_events += 1;
        }
        self.recent.record(time, servers);
    }

    /// Total redirection events ever recorded.
    pub fn lifetime_events(&self) -> u64 {
        self.lifetime_events
    }

    /// Distinct replicas ever seen.
    pub fn lifetime_replicas(&self) -> usize {
        self.lifetime_counts.len()
    }

    /// The all-history ratio map, from the running counts —
    /// `O(distinct replicas)` regardless of history length.
    ///
    /// # Errors
    ///
    /// Returns [`RatioMapError::Empty`] before the first observation.
    pub fn lifetime_ratio_map(&self) -> Result<RatioMap<K>, RatioMapError> {
        RatioMap::from_counts(self.lifetime_counts.iter().map(|(k, c)| (k.clone(), *c)))
    }

    /// A ratio map over the recency buffer, under any window policy.
    ///
    /// Note the buffer is bounded: `WindowPolicy::All` here means "all
    /// buffered observations", not all history — use
    /// [`lifetime_ratio_map`] for that.
    ///
    /// # Errors
    ///
    /// Returns [`RatioMapError::Empty`] if the window selects nothing.
    ///
    /// [`lifetime_ratio_map`]: CountingTracker::lifetime_ratio_map
    pub fn recent_ratio_map(
        &self,
        window: WindowPolicy,
        now: SimTime,
    ) -> Result<RatioMap<K>, RatioMapError> {
        self.recent.ratio_map(window, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_map_matches_full_rescan() {
        let mut counting = CountingTracker::new(1_000);
        let mut baseline = RedirectionTracker::new();
        for i in 0..500u64 {
            let servers = vec![(i % 7) as u32, ((i * 3) % 5) as u32];
            counting.record(SimTime::from_mins(i), servers.clone());
            baseline.record(SimTime::from_mins(i), servers);
        }
        let fast = counting.lifetime_ratio_map().unwrap();
        let slow = baseline
            .ratio_map(WindowPolicy::All, SimTime::from_mins(500))
            .unwrap();
        assert_eq!(fast, slow);
        assert_eq!(counting.lifetime_events(), 1_000);
        assert_eq!(counting.lifetime_replicas(), 7);
    }

    #[test]
    fn recency_buffer_is_bounded_but_counts_are_not() {
        let mut t = CountingTracker::new(5);
        for i in 0..50u64 {
            t.record(SimTime::from_mins(i), vec![i as u32]);
        }
        assert_eq!(t.lifetime_replicas(), 50);
        let recent = t
            .recent_ratio_map(WindowPolicy::All, SimTime::from_mins(49))
            .unwrap();
        assert_eq!(recent.len(), 5, "buffer keeps only the last 5");
        assert!((recent.get(&49) - 0.2).abs() < 1e-12);
        assert_eq!(recent.get(&0), 0.0);
    }

    #[test]
    fn empty_tracker_errors() {
        let t: CountingTracker<u32> = CountingTracker::new(10);
        assert_eq!(t.lifetime_ratio_map().unwrap_err(), RatioMapError::Empty);
        assert!(t
            .recent_ratio_map(WindowPolicy::All, SimTime::ZERO)
            .is_err());
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_window_rejected() {
        let _ = CountingTracker::<u32>::new(0);
    }
}
