//! CDN-based Relative network Positioning (CRP) — core algorithms.
//!
//! This crate is the paper's contribution: given streams of CDN
//! redirections observed by a set of hosts, estimate the hosts' *relative*
//! network positions with zero direct probing.
//!
//! * [`RatioMap`] — a host's redirection history compressed to
//!   (replica → frequency) ratios (§III-B);
//! * [`similarity`] — cosine similarity between ratio maps, the paper's
//!   proximity metric, plus alternatives used by ablations;
//! * [`RedirectionTracker`] — the per-host observation window, with the
//!   window policies studied in Figs. 8–9;
//! * [`select`] — closest-node selection by similarity ranking (§IV-A,
//!   evaluated in Figs. 4–5);
//! * [`cluster`] — the Strongest-Mappings-First clustering algorithm
//!   (§IV-B / §V-B, Table I, Figs. 6–7);
//! * [`quality`] — intra-/inter-cluster distance metrics and the "good
//!   cluster" criterion of Fig. 6;
//! * [`CrpService`] — a façade tying the pieces into the stand-alone
//!   service the paper sketches;
//! * [`explain`] — opt-in decision provenance: per-replica similarity
//!   contributions, ranking margins and SMF assignment rationales,
//!   recorded only when explicitly enabled.
//!
//! The algorithms are generic over the replica-server key type `K` and
//! the node identifier type `N`, so they run identically against the
//! simulated CDN substrate, hand-built observation streams in tests, or
//! (in principle) real `dig` output.
//!
//! # Example
//!
//! The worked example from §IV-A of the paper:
//!
//! ```
//! use crp_core::RatioMap;
//!
//! let a = RatioMap::from_weights([("x", 0.2), ("y", 0.8)])?;
//! let b = RatioMap::from_weights([("x", 0.6), ("y", 0.4)])?;
//! let c = RatioMap::from_weights([("x", 0.1), ("y", 0.9)])?;
//! assert!((a.cosine_similarity(&b) - 0.740).abs() < 0.001);
//! assert!((a.cosine_similarity(&c) - 0.991).abs() < 0.001);
//! // A is relatively closer to C than to B.
//! assert!(a.cosine_similarity(&c) > a.cosine_similarity(&b));
//! # Ok::<(), crp_core::RatioMapError>(())
//! ```

pub mod cluster;
pub mod counting;
pub mod explain;
pub mod invariant;
pub mod observation;
pub mod quality;
pub mod ratio;
pub mod relative;
pub mod select;
pub mod service;
pub mod similarity;
pub mod snapshot;
pub mod tracker;

pub use cluster::{CenterStrategy, Cluster, Clustering, SmfConfig};
pub use counting::CountingTracker;
pub use explain::ExplainLog;
pub use observation::{Observation, ObservationSource};
pub use quality::{ClusterQuality, QualityReport};
pub use ratio::{RatioMap, RatioMapError};
pub use relative::{relative_position, RelativeOrder};
pub use select::Ranking;
pub use service::CrpService;
pub use similarity::SimilarityMetric;
pub use snapshot::ServiceSnapshot;
pub use tracker::{RedirectionTracker, WindowPolicy};
