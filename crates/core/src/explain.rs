//! Opt-in decision provenance: *why* did CRP score, rank, or cluster
//! the way it did?
//!
//! The similarity, selection, and clustering paths answer positioning
//! queries with a single number or an ordering; when a recommendation
//! turns out wrong (a rank inversion against ground-truth RTT, a node in
//! a surprising cluster) the number alone cannot explain it. This module
//! records the *decision rationale* as structured records:
//!
//! * [`SimilarityRecord`] — the per-replica contributions behind one
//!   cosine (or other metric) score;
//! * [`RankingRecord`] — the winner, runner-up, and margin of one
//!   closest-node ranking;
//! * [`AssignmentRecord`] — the best-center similarity and threshold
//!   comparison behind one SMF join/no-join decision;
//! * [`InversionRecord`] — a selection that disagreed with ground-truth
//!   RTT, annotated by the evaluation harness with whether the error is
//!   explained (no shared replicas, weak signal).
//!
//! The layer follows the same contract as `debug_invariant!` and the
//! telemetry gates: **zero cost when disabled**. Every hook site checks
//! [`enabled`] — one relaxed atomic load — before formatting anything,
//! so production paths and disabled experiment runs pay nothing, and the
//! recording itself never feeds back into any decision, preserving the
//! workspace determinism contract (experiment outputs are byte-identical
//! with provenance on or off; `tests/telemetry_determinism.rs` proves
//! it).
//!
//! Hot-path volume is bounded: each record kind is capped at
//! [`MAX_RECORDS_PER_KIND`]; further records increment a drop counter
//! instead of growing the log, so an SMF run over thousands of nodes
//! (O(n²) comparisons) cannot exhaust memory.
//!
//! Lint rule CRP008 keeps `explain::record_*` calls confined to the
//! sanctioned decision sites — new call sites must be added to the
//! xtask allow-list deliberately.

use crate::ratio::RatioMap;
use crate::similarity::SimilarityMetric;
use serde::{Deserialize, Serialize};
use std::fmt::Debug;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Cap per record kind; past it, records are counted as dropped.
pub const MAX_RECORDS_PER_KIND: usize = 4096;

/// Contributions kept per similarity record (strongest first).
pub const MAX_CONTRIBUTIONS: usize = 8;

/// One replica's share of a similarity score.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Contribution {
    /// Replica key, Debug-formatted.
    pub key: String,
    /// The first map's ratio for this replica.
    pub weight_a: f64,
    /// The second map's ratio for this replica.
    pub weight_b: f64,
    /// This replica's additive share of the final score.
    pub share: f64,
}

/// Provenance of one similarity computation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimilarityRecord {
    /// Metric name (`cosine`, `jaccard`, `weighted-overlap`).
    pub metric: String,
    /// The score returned.
    pub score: f64,
    /// Strongest per-replica contributions, up to
    /// [`MAX_CONTRIBUTIONS`].
    pub contributions: Vec<Contribution>,
}

/// Provenance of one closest-node ranking.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RankingRecord {
    /// Candidates ranked.
    pub candidates: u64,
    /// Winning candidate, Debug-formatted.
    pub top: String,
    /// The winner's similarity score.
    pub top_score: f64,
    /// Second-placed candidate (empty for single-candidate rankings).
    pub runner_up: String,
    /// Score margin between winner and runner-up.
    pub margin: f64,
}

/// Provenance of one SMF cluster-assignment decision.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AssignmentRecord {
    /// The node being placed, Debug-formatted.
    pub node: String,
    /// The most similar active center (empty when none existed yet).
    pub best_center: String,
    /// Similarity to that center.
    pub similarity: f64,
    /// The join threshold in effect.
    pub threshold: f64,
    /// Whether the node joined (`similarity > threshold`).
    pub joined: bool,
}

/// A selection that disagreed with the ground-truth RTT ordering,
/// recorded by the evaluation harness (the library has no RTT truth).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InversionRecord {
    /// Client host, Debug-formatted.
    pub client: String,
    /// The candidate CRP selected.
    pub selected: String,
    /// Rank of the selection in the RTT ordering (0 = optimal).
    pub selected_rank: u64,
    /// The truly closest candidate.
    pub optimal: String,
    /// The selection's similarity score.
    pub top_score: f64,
    /// Whether the error has a structural explanation.
    pub explained: bool,
    /// The explanation (`no_signal`, `weak_signal`, ...); empty when
    /// unexplained.
    pub reason: String,
}

/// The accumulated provenance of one run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExplainLog {
    /// Similarity computations, capped.
    pub similarities: Vec<SimilarityRecord>,
    /// Closest-node rankings, capped.
    pub rankings: Vec<RankingRecord>,
    /// SMF assignment decisions, capped.
    pub assignments: Vec<AssignmentRecord>,
    /// Ground-truth rank inversions, capped.
    pub inversions: Vec<InversionRecord>,
    /// Similarity records dropped past the cap.
    pub dropped_similarities: u64,
    /// Ranking records dropped past the cap.
    pub dropped_rankings: u64,
    /// Assignment records dropped past the cap.
    pub dropped_assignments: u64,
    /// Inversion records dropped past the cap.
    pub dropped_inversions: u64,
}

impl ExplainLog {
    fn new() -> Self {
        ExplainLog {
            similarities: Vec::new(),
            rankings: Vec::new(),
            assignments: Vec::new(),
            inversions: Vec::new(),
            dropped_similarities: 0,
            dropped_rankings: 0,
            dropped_assignments: 0,
            dropped_inversions: 0,
        }
    }

    /// Total records kept across all kinds.
    pub fn len(&self) -> usize {
        self.similarities.len()
            + self.rankings.len()
            + self.assignments.len()
            + self.inversions.len()
    }

    /// Whether no record of any kind was kept.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records dropped past the caps.
    pub fn dropped(&self) -> u64 {
        self.dropped_similarities
            + self.dropped_rankings
            + self.dropped_assignments
            + self.dropped_inversions
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static LOG: Mutex<Option<ExplainLog>> = Mutex::new(None);

fn log_slot() -> MutexGuard<'static, Option<ExplainLog>> {
    LOG.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Whether provenance recording is active. Hook sites must check this
/// (one relaxed atomic load) before formatting any record content.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts a fresh provenance log, discarding any previous one.
pub fn start() {
    let mut slot = log_slot();
    *slot = Some(ExplainLog::new());
    ENABLED.store(true, Ordering::Release);
}

/// Stops recording and returns the accumulated log, or `None` if
/// [`start`] was never called.
pub fn finish() -> Option<ExplainLog> {
    let mut slot = log_slot();
    ENABLED.store(false, Ordering::Release);
    slot.take()
}

/// Pushes into `records` respecting the per-kind cap, counting overflow
/// in `dropped`.
fn push_capped<T>(records: &mut Vec<T>, dropped: &mut u64, record: T) {
    if records.len() < MAX_RECORDS_PER_KIND {
        records.push(record);
    } else {
        *dropped += 1;
    }
}

/// Records the provenance of one similarity computation. Call only
/// behind [`enabled`].
pub fn record_similarity<K: Ord + Clone + Debug>(
    metric: SimilarityMetric,
    a: &RatioMap<K>,
    b: &RatioMap<K>,
    score: f64,
) {
    let contributions: Vec<Contribution> = a
        .cosine_contributions(b)
        .into_iter()
        .take(MAX_CONTRIBUTIONS)
        .map(|(k, share)| Contribution {
            key: format!("{k:?}"),
            weight_a: a.get(k),
            weight_b: b.get(k),
            share,
        })
        .collect();
    let record = SimilarityRecord {
        metric: metric.to_string(),
        score,
        contributions,
    };
    if let Some(log) = log_slot().as_mut() {
        push_capped(&mut log.similarities, &mut log.dropped_similarities, record);
    }
}

/// Records the provenance of one closest-node ranking. Call only behind
/// [`enabled`].
pub fn record_ranking<N: Ord + Debug>(entries: &[(N, f64)]) {
    let Some((top, top_score)) = entries.first() else {
        return;
    };
    let (runner_up, margin) = match entries.get(1) {
        Some((n, s)) => (format!("{n:?}"), top_score - s),
        None => (String::new(), 0.0),
    };
    let record = RankingRecord {
        candidates: entries.len() as u64,
        top: format!("{top:?}"),
        top_score: *top_score,
        runner_up,
        margin,
    };
    if let Some(log) = log_slot().as_mut() {
        push_capped(&mut log.rankings, &mut log.dropped_rankings, record);
    }
}

/// Records the provenance of one SMF assignment decision. Call only
/// behind [`enabled`].
pub fn record_assignment<N: Ord + Debug>(
    node: &N,
    best_center: Option<&N>,
    similarity: f64,
    threshold: f64,
    joined: bool,
) {
    let record = AssignmentRecord {
        node: format!("{node:?}"),
        best_center: best_center.map(|c| format!("{c:?}")).unwrap_or_default(),
        similarity,
        threshold,
        joined,
    };
    if let Some(log) = log_slot().as_mut() {
        push_capped(&mut log.assignments, &mut log.dropped_assignments, record);
    }
}

/// Records a ground-truth rank inversion, from the evaluation harness.
/// Call only behind [`enabled`].
pub fn record_inversion(record: InversionRecord) {
    if let Some(log) = log_slot().as_mut() {
        push_capped(&mut log.inversions, &mut log.dropped_inversions, record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(&'static str, f64)]) -> RatioMap<&'static str> {
        RatioMap::from_weights(entries.iter().copied()).unwrap()
    }

    // One test drives the whole lifecycle: the log is process-global, so
    // parallel test threads must not share it.
    #[test]
    fn lifecycle_and_capping() {
        // Disabled by default; finish without start yields nothing.
        assert!(!enabled());
        assert!(finish().is_none());

        start();
        assert!(enabled());
        let a = map(&[("x", 0.2), ("y", 0.8)]);
        let b = map(&[("x", 0.6), ("y", 0.4)]);
        record_similarity(SimilarityMetric::Cosine, &a, &b, a.cosine_similarity(&b));
        record_ranking(&[("C", 0.99), ("B", 0.74)]);
        record_assignment(&"B", Some(&"C"), 0.8, 0.1, true);
        record_assignment::<&str>(&"D", None, 0.0, 0.1, false);
        record_inversion(InversionRecord {
            client: "h1".to_owned(),
            selected: "c7".to_owned(),
            selected_rank: 3,
            optimal: "c2".to_owned(),
            top_score: 0.4,
            explained: true,
            reason: "weak_signal".to_owned(),
        });
        let log = finish().expect("log was started");
        assert!(!enabled());
        assert_eq!(log.similarities.len(), 1);
        assert_eq!(log.rankings.len(), 1);
        assert_eq!(log.assignments.len(), 2);
        assert_eq!(log.inversions.len(), 1);
        assert_eq!(log.len(), 5);
        assert!(!log.is_empty());
        assert_eq!(log.dropped(), 0);

        // Contributions decompose the score: shares sum to it.
        let rec = &log.similarities[0];
        let total: f64 = rec.contributions.iter().map(|c| c.share).sum();
        assert!((total - rec.score).abs() < 1e-9);
        assert_eq!(log.rankings[0].top, "\"C\"");
        assert!((log.rankings[0].margin - 0.25).abs() < 1e-12);
        assert!(log.assignments[0].joined);
        assert!(!log.assignments[1].joined);
        assert!(log.assignments[1].best_center.is_empty());

        // Capping: the per-kind cap holds and drops are counted.
        start();
        for _ in 0..(MAX_RECORDS_PER_KIND + 10) {
            record_ranking(&[("only", 1.0)]);
        }
        let log = finish().expect("log was started");
        assert_eq!(log.rankings.len(), MAX_RECORDS_PER_KIND);
        assert_eq!(log.dropped_rankings, 10);
        assert_eq!(log.dropped(), 10);

        // A restart discards prior state.
        start();
        let log = finish().expect("fresh log");
        assert!(log.is_empty());
    }

    #[test]
    fn log_serializes_round_trip() {
        let log = ExplainLog {
            similarities: vec![SimilarityRecord {
                metric: "cosine".to_owned(),
                score: 0.9,
                contributions: vec![Contribution {
                    key: "r1".to_owned(),
                    weight_a: 0.5,
                    weight_b: 0.6,
                    share: 0.4,
                }],
            }],
            rankings: Vec::new(),
            assignments: Vec::new(),
            inversions: Vec::new(),
            dropped_similarities: 0,
            dropped_rankings: 0,
            dropped_assignments: 0,
            dropped_inversions: 0,
        };
        let text = serde_json::to_string(&log).expect("serialize");
        let value = serde_json::parse(&text).expect("parse");
        let back = ExplainLog::from_value(&value).expect("shape");
        assert_eq!(back, log);
    }
}
