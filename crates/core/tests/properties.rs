//! Property-based tests for the CRP core invariants.

use crp_core::{Clustering, Ranking, RatioMap, SimilarityMetric, SmfConfig};
use crp_core::{RedirectionTracker, WindowPolicy};
use crp_netsim::SimTime;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A strategy producing valid (key, weight) lists for ratio maps.
fn arb_weights() -> impl Strategy<Value = Vec<(u32, f64)>> {
    vec(((0u32..30), (0.01f64..10.0)), 1..12)
}

fn arb_map() -> impl Strategy<Value = RatioMap<u32>> {
    arb_weights().prop_map(|w| RatioMap::from_weights(w).expect("weights are valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ratios_always_sum_to_one(map in arb_map()) {
        let sum: f64 = map.iter().map(|(_, v)| v).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(map.iter().all(|(_, v)| v > 0.0));
    }

    #[test]
    fn cosine_in_unit_interval_and_symmetric(a in arb_map(), b in arb_map()) {
        let ab = a.cosine_similarity(&b);
        let ba = b.cosine_similarity(&a);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn self_similarity_is_one(a in arb_map()) {
        for metric in SimilarityMetric::ALL {
            prop_assert!((metric.compare(&a, &a) - 1.0).abs() < 1e-9, "{metric}");
        }
    }

    #[test]
    fn zero_similarity_iff_disjoint(a in arb_map(), b in arb_map()) {
        let disjoint = !a.overlaps(&b);
        let cos = a.cosine_similarity(&b);
        if disjoint {
            prop_assert_eq!(cos, 0.0);
        } else {
            prop_assert!(cos > 0.0);
        }
    }

    #[test]
    fn all_metrics_bounded(a in arb_map(), b in arb_map()) {
        for metric in SimilarityMetric::ALL {
            let s = metric.compare(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "{metric} gave {s}");
        }
    }

    #[test]
    fn smf_outputs_a_partition(
        maps in vec(arb_map(), 0..25),
        threshold in 0.0f64..1.0,
        seed in 0u64..100,
    ) {
        let nodes: Vec<(usize, RatioMap<u32>)> =
            maps.into_iter().enumerate().collect();
        let mut cfg = SmfConfig::paper(threshold);
        cfg.seed = seed;
        let clustering = Clustering::smf(&nodes, &cfg);
        // Every node appears exactly once.
        prop_assert_eq!(clustering.total_nodes(), nodes.len());
        let mut seen = BTreeSet::new();
        for c in clustering.clusters() {
            prop_assert!(!c.is_empty());
            prop_assert!(c.members().contains(c.center()));
            for m in c.members() {
                prop_assert!(seen.insert(*m), "node {} in two clusters", m);
            }
        }
    }

    #[test]
    fn smf_members_similar_to_center_above_threshold(
        maps in vec(arb_map(), 2..20),
        threshold in 0.05f64..0.9,
    ) {
        let nodes: Vec<(usize, RatioMap<u32>)> =
            maps.into_iter().enumerate().collect();
        let clustering = Clustering::smf(&nodes, &SmfConfig::paper(threshold));
        for cluster in clustering.multi_clusters() {
            let center_map = &nodes[*cluster.center()].1;
            for m in cluster.members() {
                if m == cluster.center() { continue; }
                let s = nodes[*m].1.cosine_similarity(center_map);
                prop_assert!(
                    s > threshold,
                    "member {} sim {} <= t {}", m, s, threshold
                );
            }
        }
    }

    #[test]
    fn ranking_is_sorted_and_complete(
        client in arb_map(),
        candidates in vec(arb_map(), 0..15),
    ) {
        let named: Vec<(usize, &RatioMap<u32>)> =
            candidates.iter().enumerate().collect();
        let ranking = Ranking::rank(&client, named, SimilarityMetric::Cosine);
        prop_assert_eq!(ranking.len(), candidates.len());
        let entries = ranking.entries();
        for w in entries.windows(2) {
            prop_assert!(w[0].1 >= w[1].1, "ranking out of order");
        }
        // Top-1 equals the max similarity.
        if let Some(top) = ranking.top() {
            let max = entries.iter().map(|(_, s)| *s).fold(f64::MIN, f64::max);
            prop_assert_eq!(ranking.score_of(top).unwrap(), max);
        }
    }

    #[test]
    fn tracker_window_shrinks_monotonically(
        serverss in vec(vec(0u32..10, 1..3), 1..30),
        n in 1usize..40,
    ) {
        let mut tracker = RedirectionTracker::new();
        for (i, servers) in serverss.iter().enumerate() {
            tracker.record(SimTime::from_mins(i as u64), servers.clone());
        }
        let now = SimTime::from_mins(serverss.len() as u64);
        let windowed = tracker.ratio_map(WindowPolicy::LastProbes(n), now).unwrap();
        let all = tracker.ratio_map(WindowPolicy::All, now).unwrap();
        // A windowed map only contains servers the full map contains.
        for (k, _) in windowed.iter() {
            prop_assert!(all.get(k) > 0.0);
        }
        if n >= serverss.len() {
            prop_assert_eq!(windowed, all);
        }
    }

    #[test]
    fn tracker_capacity_is_respected(
        cap in 1usize..10,
        extra in 0usize..20,
    ) {
        let mut tracker: RedirectionTracker<u32> = RedirectionTracker::with_capacity(cap);
        for i in 0..(cap + extra) {
            tracker.record(SimTime::from_mins(i as u64), vec![i as u32]);
        }
        prop_assert_eq!(tracker.len(), cap.min(cap + extra));
    }
}
