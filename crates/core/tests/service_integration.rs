//! Integration tests for [`CrpService`] as a long-running positioning
//! service: observations arrive over simulated hours, windows expire,
//! nodes churn, and queries must reflect only the live window. A second
//! test pins down the causal-trace layer as a pure observer: enabling
//! tracing (at any sampling rate) cannot change a single query result.

use crp_core::{CrpService, RelativeOrder, SimilarityMetric, SmfConfig, WindowPolicy};
use crp_netsim::{SimDuration, SimTime};
use crp_telemetry::trace;
use crp_telemetry::trace::TraceConfig;
use std::fmt::Write as _;

fn mins(m: u64) -> SimTime {
    SimTime::from_mins(m)
}

/// A service whose window only admits the last 30 minutes.
fn aged_service() -> CrpService<&'static str, &'static str> {
    CrpService::new(
        WindowPolicy::MaxAge(SimDuration::from_mins(30)),
        SimilarityMetric::Cosine,
    )
}

#[test]
fn queries_track_the_live_window_across_expiry_and_churn() {
    let mut svc = aged_service();

    // Minute 0-10: the client looks like server A (both redirect to r1
    // heavy, r2 light); server B lives behind a disjoint replica set.
    for t in 0..5 {
        svc.record("client", mins(2 * t), vec!["r1", "r1", "r1", "r2"]);
        svc.record("server_a", mins(2 * t), vec!["r1", "r1", "r2", "r2"]);
        svc.record("server_b", mins(2 * t), vec!["r9", "r8"]);
    }
    let ranking = svc
        .closest(&"client", ["server_a", "server_b"], mins(10))
        .expect("client has observations in window");
    assert_eq!(ranking.top(), Some(&"server_a"));
    assert_eq!(ranking.len(), 2);
    assert!(matches!(
        svc.relative(&"server_a", &"server_b", &"client", mins(10))
            .expect("all three positioned"),
        RelativeOrder::CloserA { .. }
    ));

    // Minute 50: every observation is now older than the 30-minute
    // window — the same nodes can no longer be positioned at all.
    assert!(svc.ratio_map(&"client", mins(50)).is_err());
    assert!(svc
        .closest(&"client", ["server_a", "server_b"], mins(50))
        .is_err());

    // Minutes 45-50: fresh observations arrive, but the client has
    // moved — it now resolves like server B. Only the live window may
    // speak: the stale minute-0 affinity to A must not leak in.
    for t in 45..50 {
        svc.record("client", mins(t), vec!["r9", "r9", "r8"]);
        svc.record("server_a", mins(t), vec!["r1", "r1", "r2"]);
        svc.record("server_b", mins(t), vec!["r9", "r8", "r8"]);
    }
    let ranking = svc
        .closest(&"client", ["server_a", "server_b"], mins(50))
        .expect("fresh observations in window");
    assert_eq!(ranking.top(), Some(&"server_b"));

    // Clustering sees the same live picture: client and B share a
    // cluster, A stands alone on its disjoint replicas.
    let clustering = svc.cluster(&SmfConfig::paper(0.1), mins(50));
    assert_eq!(clustering.total_nodes(), 3);
    let of = |node: &&str| {
        clustering
            .clusters()
            .iter()
            .position(|c| c.members().contains(node))
    };
    assert_eq!(of(&"client"), of(&"server_b"));
    assert_ne!(of(&"client"), of(&"server_a"));

    // Churn bookkeeping: pruning at the window cutoff drops exactly the
    // 15 expired minute 0-10 observations and keeps all three nodes;
    // removing a node makes it unknown to queries.
    let (dropped, removed) = svc.prune_stale(mins(50), SimDuration::from_mins(30));
    assert_eq!((dropped, removed), (15, 0));
    assert_eq!(svc.node_count(), 3);
    assert!(svc.remove_node(&"server_a"));
    assert!(!svc.remove_node(&"server_a"));
    assert!(svc.ratio_map(&"server_a", mins(50)).is_err());
    assert_eq!(svc.node_count(), 2);
}

/// Replays a fixed observation script through a fresh service and
/// renders every query result into one comparable string. When `traced`
/// is set, each record runs under a freshly minted causal trace — the
/// exact ingest shape the CDN layer produces.
fn scripted_run(traced: bool) -> String {
    let mut svc: CrpService<u32, u32> =
        CrpService::new(WindowPolicy::LastProbes(10), SimilarityMetric::Cosine);
    for step in 0u64..120 {
        let node = (step % 6) as u32;
        // A deterministic, slightly skewed replica pattern per node.
        let replicas = vec![
            (node + (step / 6) as u32 % 3) % 8,
            (node * 2 + 1) % 8,
            node % 8,
        ];
        if traced {
            let id = trace::mint(&[42, u64::from(node), step]);
            trace::begin(id, step * 60_000, "test.ingest");
        }
        svc.record(node, SimTime::from_mins(step), replicas);
    }
    let now = SimTime::from_mins(120);
    let mut out = String::new();
    for client in 0u32..6 {
        let ranking = svc
            .closest(&client, (0..6).filter(|c| *c != client), now)
            .expect("every node has observations");
        let _ = writeln!(out, "closest {client}: {:?}", ranking.entries());
        let _ = writeln!(
            out,
            "relative {client}: {:?}",
            svc.relative(&((client + 1) % 6), &((client + 2) % 6), &client, now)
        );
    }
    let _ = writeln!(
        out,
        "cluster: {:?}",
        svc.cluster(&SmfConfig::paper(0.5), now)
    );
    out
}

#[test]
fn trace_sampling_on_or_off_never_changes_query_results() {
    // One test function drives all phases: the trace collector is
    // process-global, so phases must not run on parallel test threads.
    assert!(!trace::enabled());
    let baseline = scripted_run(false);
    assert!(!baseline.is_empty());

    // Keep-everything sampling: results identical, every mint sampled.
    trace::start(TraceConfig {
        sample_one_in: 1,
        ..TraceConfig::default()
    });
    let all = scripted_run(true);
    let log_all = trace::finish().expect("trace collector started");
    assert_eq!(baseline, all, "tracing (1-in-1) changed query results");
    assert_eq!(log_all.minted, 120);
    assert_eq!(log_all.sampled, 120);

    // Default head sampling: results still identical, strictly fewer
    // traces kept, and the sample is deterministic.
    trace::start(TraceConfig::default());
    let sampled = scripted_run(true);
    let log_sampled = trace::finish().expect("trace collector started");
    assert_eq!(baseline, sampled, "tracing (1-in-4) changed query results");
    assert_eq!(log_sampled.minted, 120);
    assert!(log_sampled.sampled < log_sampled.minted);

    // A second sampled run reproduces the identical trace log.
    trace::start(TraceConfig::default());
    let again = scripted_run(true);
    let log_again = trace::finish().expect("trace collector started");
    assert_eq!(baseline, again);
    assert_eq!(
        serde_json::to_string(&log_sampled).expect("serializable"),
        serde_json::to_string(&log_again).expect("serializable"),
        "same seed must record identical traces"
    );

    // Off again: still byte-identical.
    assert!(!trace::enabled());
    assert_eq!(scripted_run(false), baseline);
}
