//! Overlay path repair using CRP clusters.
//!
//! The paper's §IV-B lists this as the second clustering query: "When a
//! node along a path goes down, one can use knowledge of clusters to
//! quickly repair the path and maintain its quality by using another
//! node in the same cluster." And the third: picking nodes from
//! *different* clusters yields fault-independent sets.
//!
//! This example builds a relay overlay, kills relays, repairs each path
//! with a cluster mate of the dead relay, and measures how much path
//! quality survives. It then demonstrates the fault-independence query.
//!
//! ```text
//! cargo run --release --example overlay_repair
//! ```

use crp::{Scenario, ScenarioConfig};
use crp_core::{SimilarityMetric, SmfConfig, WindowPolicy};
use crp_netsim::{noise, HostId, SimDuration, SimTime};

const NODES: usize = 100;
const PATHS: usize = 30;

fn main() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 55,
        candidate_servers: 0,
        clients: NODES,
        cdn_scale: 1.0,
        ..ScenarioConfig::default()
    });
    let end = SimTime::from_hours(10);
    let service = scenario.observe_hosts(
        scenario.clients(),
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );
    let clustering = service.cluster(&SmfConfig::paper(0.1), end);
    let net = scenario.network();
    let nodes = scenario.clients();
    let rtt = |a: HostId, b: HostId| net.rtt(a, b, end).millis();

    // Build relay paths src -> relay -> dst where the relay was chosen
    // well (best of a handful), then kill the relay.
    let mut kept_quality = Vec::new();
    let mut repaired_count = 0usize;
    for p in 0..PATHS {
        let src = nodes[noise::mix(&[1, p as u64]) as usize % nodes.len()];
        let dst = nodes[noise::mix(&[2, p as u64]) as usize % nodes.len()];
        if src == dst {
            continue;
        }
        let relay = *nodes
            .iter()
            .filter(|r| **r != src && **r != dst)
            .min_by(|a, b| {
                (rtt(src, **a) + rtt(**a, dst)).total_cmp(&(rtt(src, **b) + rtt(**b, dst)))
            })
            .expect("relay exists");
        let original = rtt(src, relay) + rtt(relay, dst);

        // The relay dies. Repair with a cluster mate — no probing, no
        // re-running relay selection.
        let mates = clustering.peers_of(&relay);
        let Some(&replacement) =
            mates
                .iter()
                .filter(|m| ***m != src && ***m != dst)
                .min_by(|a, b| {
                    // The overlay can afford to check its few mates.
                    (rtt(src, ***a) + rtt(***a, dst)).total_cmp(&(rtt(src, ***b) + rtt(***b, dst)))
                })
        else {
            continue; // relay was unclustered; full reselection needed
        };
        repaired_count += 1;
        let repaired = rtt(src, *replacement) + rtt(*replacement, dst);
        kept_quality.push(original / repaired);
    }

    let mean_quality = kept_quality.iter().sum::<f64>() / kept_quality.len().max(1) as f64;
    println!("relay failures repaired from cluster mates: {repaired_count}/{PATHS}");
    println!(
        "repaired paths retain {:.0}% of the original path quality on average\n",
        mean_quality * 100.0
    );

    // Fault-independence: pick monitors from distinct clusters and show
    // they are mutually distant (uncorrelated failures).
    let monitors = clustering.representatives(5);
    println!("5 fault-independent monitors from distinct clusters:");
    let mut min_pair = f64::INFINITY;
    for (i, a) in monitors.iter().enumerate() {
        for b in &monitors[i + 1..] {
            min_pair = min_pair.min(rtt(**a, **b));
        }
    }
    for m in &monitors {
        let h = net.host(**m);
        println!("  {} ({}, {})", m, h.region(), h.asn());
    }
    println!("closest pair among monitors: {min_pair:.0} ms apart");
}
