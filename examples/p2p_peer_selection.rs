//! Peer selection for a swarming P2P system (BitTorrent-style).
//!
//! The paper's §IV-B motivates clustering with exactly this workload: "a
//! node wishes to peer with nodes on low RTT paths so as to minimize
//! latency and potentially increase bandwidth". Each peer observes CDN
//! redirections; the tracker clusters the swarm with SMF and hands every
//! joining peer its cluster mates first.
//!
//! The example compares mean peer RTT under three policies: random
//! peers (what trackers do by default), CRP cluster peers, and the
//! unattainable oracle (true k-nearest peers).
//!
//! ```text
//! cargo run --release --example p2p_peer_selection
//! ```

use crp::{Scenario, ScenarioConfig};
use crp_core::{SimilarityMetric, SmfConfig, WindowPolicy};
use crp_netsim::{noise, HostId, SimDuration, SimTime};

const SWARM: usize = 120;
const PEERS_WANTED: usize = 4;

fn main() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 21,
        candidate_servers: 0,
        clients: SWARM,
        cdn_scale: 1.0,
        ..ScenarioConfig::default()
    });
    let end = SimTime::from_hours(12);
    let service = scenario.observe_hosts(
        scenario.clients(),
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );

    // The "tracker" clusters the swarm once from the collected maps.
    let clustering = service.cluster(&SmfConfig::paper(0.1), end);
    let summary = clustering.summary();
    println!(
        "swarm of {SWARM}: {} peers grouped into {} clusters (largest {})",
        summary.nodes_clustered, summary.num_clusters, summary.max_size
    );

    let net = scenario.network();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut random_ms = Vec::new();
    let mut crp_ms = Vec::new();
    let mut oracle_ms = Vec::new();

    for (i, &peer) in scenario.clients().iter().enumerate() {
        // True RTTs to every other swarm member.
        let mut truth: Vec<(HostId, f64)> = scenario
            .clients()
            .iter()
            .filter(|p| **p != peer)
            .map(|&p| (p, net.rtt(peer, p, end).millis()))
            .collect();
        truth.sort_by(|a, b| a.1.total_cmp(&b.1));

        // Policy 1: random peers, as a plain tracker would return.
        let rnd: Vec<f64> = (0..PEERS_WANTED)
            .map(|k| {
                let j = noise::mix(&[99, i as u64, k as u64]) as usize % truth.len();
                truth[j].1
            })
            .collect();
        random_ms.push(mean(&rnd));

        // Policy 2: CRP cluster mates first, random fill if short.
        let mates = clustering.peers_of(&peer);
        let mut chosen: Vec<f64> = mates
            .iter()
            .take(PEERS_WANTED)
            .map(|m| net.rtt(peer, **m, end).millis())
            .collect();
        let mut k = 0u64;
        while chosen.len() < PEERS_WANTED {
            let j = noise::mix(&[7, i as u64, k]) as usize % truth.len();
            chosen.push(truth[j].1);
            k += 1;
        }
        crp_ms.push(mean(&chosen));

        // Policy 3: oracle k-nearest (requires all-pairs probing).
        let oracle: Vec<f64> = truth.iter().take(PEERS_WANTED).map(|(_, ms)| *ms).collect();
        oracle_ms.push(mean(&oracle));
    }

    println!("\nmean RTT to selected peers, averaged over the swarm:");
    println!("  random peers      {:>7.1} ms", mean(&random_ms));
    println!("  CRP cluster peers {:>7.1} ms", mean(&crp_ms));
    println!(
        "  oracle k-nearest  {:>7.1} ms  (needs {} pings)",
        mean(&oracle_ms),
        SWARM * (SWARM - 1) / 2
    );
    println!(
        "\nCRP recovers {:.0}% of the oracle's improvement over random, with zero probing.",
        100.0 * (mean(&random_ms) - mean(&crp_ms)) / (mean(&random_ms) - mean(&oracle_ms))
    );
}
