//! Quickstart: CRP in a nutshell.
//!
//! Walks through the paper's §IV-A worked example with hand-built ratio
//! maps, then runs the same logic end-to-end against the simulated CDN.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use crp::{Scenario, ScenarioConfig};
use crp_core::{Ranking, RatioMap, SimilarityMetric, WindowPolicy};
use crp_netsim::{SimDuration, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Part 1 — the paper's worked example (§IV-A).
    //
    // Client A and candidate servers B and C are redirected to CDN
    // replicas x and y with different frequencies. Cosine similarity of
    // the ratio maps tells A that C is the closer server.
    // ------------------------------------------------------------------
    let a = RatioMap::from_weights([("x", 0.2), ("y", 0.8)])?;
    let b = RatioMap::from_weights([("x", 0.6), ("y", 0.4)])?;
    let c = RatioMap::from_weights([("x", 0.1), ("y", 0.9)])?;

    println!("paper worked example:");
    println!(
        "  cos_sim(A, B) = {:.3}  (paper: 0.740)",
        a.cosine_similarity(&b)
    );
    println!(
        "  cos_sim(A, C) = {:.3}  (paper: 0.991)",
        a.cosine_similarity(&c)
    );

    let ranking = Ranking::rank(&a, [("B", &b), ("C", &c)], SimilarityMetric::Cosine);
    println!(
        "  A selects server {}\n",
        ranking.top().expect("two candidates")
    );

    // ------------------------------------------------------------------
    // Part 2 — the same decision made from live (simulated) redirections.
    //
    // Build a small world, let every host observe CDN redirections for
    // six hours at the paper's 10-minute cadence, and ask CRP for the
    // closest candidate to each client — all without a single ping.
    // ------------------------------------------------------------------
    let scenario = Scenario::build(ScenarioConfig {
        seed: 7,
        candidate_servers: 20,
        clients: 5,
        cdn_scale: 0.4,
        ..ScenarioConfig::default()
    });
    let end = SimTime::from_hours(6);
    let service = scenario.observe_all(
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(10),
        SimilarityMetric::Cosine,
    );

    println!("simulated scenario (20 candidates, 5 clients):");
    for &client in scenario.clients() {
        let Ok(ranking) = service.closest(&client, scenario.candidates().to_vec(), end) else {
            println!("  {client}: no redirections observed (cannot position)");
            continue;
        };
        let Some(&choice) = ranking.top() else {
            continue;
        };
        let chosen_rtt = scenario.mean_rtt(client, choice, SimTime::ZERO, end);
        let best = scenario.rtt_ordered_candidates(client, SimTime::ZERO, end);
        let rank = best
            .iter()
            .position(|(h, _)| *h == choice)
            .expect("choice is a candidate");
        println!(
            "  {client}: picked {choice} at {chosen_rtt} (optimal {} at {}, rank {rank})",
            best[0].0, best[0].1,
        );
    }
    println!(
        "\ntotal DNS lookups per host over 6h: {} (and zero pings)",
        2 * 36
    );
    Ok(())
}
