//! A long-running CRP positioning service.
//!
//! The paper sketches CRP "as a stand-alone service, shared by multiple
//! applications" (§III-B). This example runs such a daemon through a
//! realistic operational day:
//!
//! 1. nodes feed observations in on the 10-minute cadence;
//! 2. applications issue the three query types — closest node, the
//!    three-point relative-position primitive, and a group rendezvous
//!    (which member is closest to *every* participant?);
//! 3. nodes churn (join and leave), and the daemon prunes stale state;
//! 4. the daemon snapshots its state to JSON and restarts from it
//!    without losing anyone's ~100-minute bootstrap.
//!
//! ```text
//! cargo run --release --example positioning_daemon
//! ```

use crp::{Scenario, ScenarioConfig};
use crp_core::{RelativeOrder, ServiceSnapshot, SimilarityMetric, SmfConfig, WindowPolicy};
use crp_netsim::{SimDuration, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 77,
        candidate_servers: 0,
        clients: 40,
        cdn_scale: 0.8,
        ..ScenarioConfig::default()
    });
    let nodes = scenario.clients();
    let noon = SimTime::from_hours(12);

    // --- Phase 1: a morning of observations. -------------------------
    let mut service = scenario.observe_hosts(
        nodes,
        SimTime::ZERO,
        noon,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );
    println!(
        "daemon: {} nodes position-capable by noon",
        service.node_count()
    );

    // --- Phase 2: application queries. --------------------------------
    // Pick query participants from a real cluster so the answers carry
    // signal (the daemon would route no-signal queries to a fallback
    // positioning source).
    let clustering = service.cluster(&SmfConfig::paper(0.1), noon);
    let biggest = clustering
        .multi_clusters()
        .max_by_key(|c| c.len())
        .expect("some cluster forms");
    let in_cluster: Vec<_> = biggest.members().to_vec();
    let (client, srv_a) = (in_cluster[0], in_cluster[1]);
    let srv_b = nodes
        .iter()
        .copied()
        .find(|n| !in_cluster.contains(n))
        .expect("someone outside the cluster");
    match service.relative(&srv_a, &srv_b, &client, noon) {
        Ok(RelativeOrder::CloserA { margin }) => {
            println!("query: {srv_a} is closer to {client} than {srv_b} (margin {margin:.2})")
        }
        Ok(RelativeOrder::CloserB { margin }) => {
            println!("query: {srv_b} is closer to {client} than {srv_a} (margin {margin:.2})")
        }
        Ok(RelativeOrder::Indeterminate) => {
            println!("query: {client} shares no replicas with {srv_a}/{srv_b} — not near either")
        }
        Err(e) => println!("query failed: {e}"),
    }

    // Group rendezvous: which node is best-positioned for a whole party?
    let party: Vec<crp_netsim::HostId> = in_cluster.iter().copied().take(4).collect();
    let party = &party[..];
    let mut best: Option<(crp_netsim::HostId, f64)> = None;
    for &candidate in nodes.iter().filter(|n| !party.contains(n)) {
        let mut min_sim = f64::INFINITY;
        for &member in party {
            match service.similarity(&candidate, &member, noon) {
                Ok(s) => min_sim = min_sim.min(s),
                Err(_) => {
                    min_sim = 0.0;
                    break;
                }
            }
        }
        if best.is_none() || min_sim > best.expect("checked").1 {
            best = Some((candidate, min_sim));
        }
    }
    if let Some((host, sim)) = best {
        let worst_rtt = party
            .iter()
            .map(|&m| scenario.network().rtt(host, m, noon).millis())
            .fold(0.0f64, f64::max);
        println!(
            "query: rendezvous host for the 4-member party: {host} (min similarity {sim:.2}, worst member RTT {worst_rtt:.0} ms)"
        );
    }

    // --- Phase 3: churn. ----------------------------------------------
    for &leaver in &nodes[30..] {
        service.remove_node(&leaver);
    }
    let (dropped, removed) = service.prune_stale(noon, SimDuration::from_hours(6));
    println!(
        "churn: 10 nodes left, pruning dropped {dropped} stale observations and {removed} empty nodes"
    );

    // --- Phase 4: snapshot, restart, verify. ---------------------------
    let snapshot = ServiceSnapshot::capture(&service);
    let json = serde_json::to_string(&snapshot)?;
    println!(
        "snapshot: {} nodes / {} observations -> {} bytes of JSON",
        snapshot.node_count(),
        snapshot.observation_count(),
        json.len()
    );
    let restored: ServiceSnapshot<crp_netsim::HostId, crp_cdn::ReplicaId> =
        serde_json::from_str(&json)?;
    let service2 = restored.restore();
    let same = nodes[..30]
        .iter()
        .all(|n| service.ratio_map(n, noon).ok() == service2.ratio_map(n, noon).ok());
    println!(
        "restart: restored daemon answers identically: {}",
        if same { "yes" } else { "NO — bug!" }
    );
    Ok(())
}
