//! Server selection for a mirrored online game.
//!
//! The paper's introduction motivates CRP with "interactive massively
//! multi-player online games could use location information to improve
//! latencies by assigning clients to nearby hosts in their mirrored
//! server architectures". Here a game operator runs a handful of mirror
//! servers; players joining a match are assigned the mirror CRP deems
//! closest, and we compare the resulting latency distribution against
//! random assignment, against Meridian (which probes), and against the
//! optimum.
//!
//! ```text
//! cargo run --release --example game_server_selection
//! ```

use crp::{Scenario, ScenarioConfig};
use crp_core::{SimilarityMetric, WindowPolicy};
use crp_meridian::{FaultPlan, MeridianConfig, MeridianOverlay};
use crp_netsim::{noise, SimDuration, SimTime};

const MIRRORS: usize = 16;
const PLAYERS: usize = 200;
/// Real-time games aim below this round-trip budget.
const PLAYABLE_MS: f64 = 60.0;

fn main() {
    let scenario = Scenario::build(ScenarioConfig {
        seed: 33,
        candidate_servers: MIRRORS,
        clients: PLAYERS,
        cdn_scale: 1.0,
        ..ScenarioConfig::default()
    });
    let end = SimTime::from_hours(8);
    let service = scenario.observe_all(
        SimTime::ZERO,
        end,
        SimDuration::from_mins(10),
        WindowPolicy::LastProbes(30),
        SimilarityMetric::Cosine,
    );
    let overlay = MeridianOverlay::build(
        scenario.network(),
        scenario.candidates(),
        MeridianConfig::default(),
        FaultPlan::none(),
    );

    let net = scenario.network();
    let mut random_ms = Vec::new();
    let mut crp_ms = Vec::new();
    let mut meridian_ms = Vec::new();
    let mut optimal_ms = Vec::new();
    let mut meridian_probes_before = overlay.probes_issued();

    for (i, &player) in scenario.clients().iter().enumerate() {
        let rtts: Vec<f64> = scenario
            .candidates()
            .iter()
            .map(|&m| net.rtt(player, m, end).millis())
            .collect();
        optimal_ms.push(rtts.iter().copied().fold(f64::INFINITY, f64::min));
        random_ms.push(rtts[noise::mix(&[3, i as u64]) as usize % rtts.len()]);

        if let Ok(ranking) = service.closest(&player, scenario.candidates().to_vec(), end) {
            if let Some(&mirror) = ranking.top() {
                crp_ms.push(net.rtt(player, mirror, end).millis());
            }
        }

        let entry = scenario.candidates()[i % MIRRORS];
        let q = overlay.closest_node_query(net, entry, player, end);
        meridian_ms.push(net.rtt(player, q.selected, end).millis());
    }
    let meridian_probes = overlay.probes_issued() - meridian_probes_before;
    meridian_probes_before += meridian_probes;
    let _ = meridian_probes_before;

    let stats = |name: &str, v: &[f64], probes: u64| {
        let mean = v.iter().sum::<f64>() / v.len().max(1) as f64;
        let playable = v.iter().filter(|ms| **ms <= PLAYABLE_MS).count() as f64
            / v.len().max(1) as f64
            * 100.0;
        println!("  {name:<18} mean {mean:>6.1} ms   playable (≤{PLAYABLE_MS:.0} ms): {playable:>5.1}%   probes: {probes}");
    };

    println!("assigning {PLAYERS} players to {MIRRORS} mirrors:\n");
    stats("random", &random_ms, 0);
    stats("crp top-1", &crp_ms, 0);
    stats("meridian", &meridian_ms, meridian_probes);
    stats("optimal", &optimal_ms, (PLAYERS * MIRRORS) as u64);
}
